// Pipeline-vs-legacy differential conformance harness.
//
// The compiled element dataplane (sim/pipeline.h) claims *bit-identity*
// with the legacy branch-forest walk it replaced — not statistical
// similarity: the same campaign must produce byte-for-byte the same
// dataset (and the same content_hash) no matter which engine walks the
// packets, at any fault rate and any thread count. This harness proves it
// by running whole campaigns under both engines and comparing frozen
// datasets at fault rates {0, 1%, 10%} × worker threads {1, 2, 8}, plus a
// randomized element-composition property test: arbitrary valid element
// chains over real packets must preserve the dataplane's conservation
// invariants (TTL monotonicity, option geometry bounds, deferred
// token-bucket event accounting) even for compositions the run-list
// compiler would never emit.
//
// The per-element spec tables live in tests/element_test.cpp; when this
// file fails, that one says which element diverged.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/testbed.h"
#include "packet/view.h"
#include "packet/wire.h"
#include "sim/element.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/pipeline.h"

namespace rr::measure {
namespace {

class PipelineDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 1701;
    testbed_ = new Testbed{config};
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }

  struct EngineRun {
    data::CampaignDataset dataset;
    sim::NetCounters counters;
  };

  static EngineRun run_engine(bool legacy, double fault_rate, int threads) {
    sim::Network& net = testbed_->network();
    net.set_walk_engine(legacy);
    CampaignConfig config;
    config.threads = threads;
    if (fault_rate > 0.0) {
      config.faults = sim::FaultParams::uniform(fault_rate);
    }
    Campaign campaign = Campaign::run(*testbed_, config);
    EngineRun result{
        data::CampaignDataset::from_campaign(std::move(campaign), "diff"),
        net.counters()};
    net.set_walk_engine(false);
    return result;
  }

  /// The aggregate counters are part of the WalkResult contract too: both
  /// engines must charge every drop to the same cause.
  static void expect_counters_equal(const sim::NetCounters& a,
                                    const sim::NetCounters& b) {
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.dropped_loss, b.dropped_loss);
    EXPECT_EQ(a.dropped_filter, b.dropped_filter);
    EXPECT_EQ(a.dropped_rate_limit, b.dropped_rate_limit);
    EXPECT_EQ(a.dropped_ttl, b.dropped_ttl);
    EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
    EXPECT_EQ(a.ttl_errors, b.ttl_errors);
    EXPECT_EQ(a.port_unreachables, b.port_unreachables);
  }

  /// One legacy reference (single-threaded — the engine the paper-scale
  /// results were originally produced by) against the pipeline at every
  /// thread count. Pipeline runs agreeing with the same reference also
  /// proves they agree with each other.
  static void expect_engines_agree(double fault_rate) {
    const EngineRun legacy = run_engine(true, fault_rate, 1);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(testing::Message()
                   << "fault_rate " << fault_rate << " threads " << threads);
      const EngineRun pipeline = run_engine(false, fault_rate, threads);
      EXPECT_EQ(pipeline.dataset.content_hash(), legacy.dataset.content_hash());
      EXPECT_EQ(pipeline.dataset, legacy.dataset);
      expect_counters_equal(pipeline.counters, legacy.counters);
    }
  }

  static Testbed* testbed_;
};

Testbed* PipelineDifferentialTest::testbed_ = nullptr;

TEST_F(PipelineDifferentialTest, EnginesBitIdenticalWithoutFaults) {
  expect_engines_agree(0.0);
}

TEST_F(PipelineDifferentialTest, EnginesBitIdenticalAtOnePercentFaults) {
  expect_engines_agree(0.01);
}

TEST_F(PipelineDifferentialTest, EnginesBitIdenticalAtTenPercentFaults) {
  expect_engines_agree(0.10);
}

TEST_F(PipelineDifferentialTest, LegacyEngineSelectableViaEnvAndSetter) {
  sim::Network& net = testbed_->network();
  EXPECT_FALSE(net.using_legacy_walk());  // pipeline is the default engine
  net.set_walk_engine(true);
  EXPECT_TRUE(net.using_legacy_walk());
  net.set_walk_engine(false);

  // The deprecation escape hatch: RROPT_LEGACY_WALK at Network
  // construction selects the legacy engine without a code change.
  ::setenv("RROPT_LEGACY_WALK", "1", 1);
  {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    Testbed shared{testbed_->topology_ptr(), testbed_->behaviors_ptr(),
                   config};
    EXPECT_TRUE(shared.network().using_legacy_walk());
  }
  ::unsetenv("RROPT_LEGACY_WALK");
}

TEST_F(PipelineDifferentialTest, InstalledFaultPlanRecompilesRunLists) {
  sim::Network& net = testbed_->network();
  CampaignConfig config;
  config.faults = sim::FaultParams::uniform(0.01);
  (void)Campaign::run(*testbed_, config);
  // A faulted campaign compiles fault elements in (and with them the loss
  // of the trusted-stamp licence)...
  EXPECT_TRUE(net.pipeline().config().faults_enabled);
  const sim::PackedRunList faulted =
      net.pipeline().list(sim::HopRow::kStamps, /*has_options=*/true);
  EXPECT_EQ(sim::run_list_at(faulted, 0), sim::ElementOp::kFaultInject);
  // ...and the next plan-less campaign's install recompiles the table
  // back to the fused fault-free form.
  (void)Campaign::run(*testbed_);
  EXPECT_FALSE(net.pipeline().config().faults_enabled);
  const sim::PackedRunList hot =
      net.pipeline().list(sim::HopRow::kStamps, /*has_options=*/true);
  const std::size_t hot_steps = sim::run_list_size(hot);
  ASSERT_GT(hot_steps, 0u);
  EXPECT_NE(sim::run_list_at(hot, 0), sim::ElementOp::kFaultInject);
  EXPECT_EQ(sim::run_list_at(hot, hot_steps - 1),
            sim::ElementOp::kTtlStampTrusted);
}

// ------------------------------------------- randomized composition property
//
// Arbitrary valid element chains (not just the ones the compiler emits)
// executed over real serialized ping-RR packets. Whatever the chain, the
// dataplane's conservation invariants must hold at every hop:
//
//   * TTL monotonicity: the TTL byte never increases;
//   * option geometry bounds: header length, option offsets, and total
//     length never change mid-walk; RR fill never exceeds capacity; the
//     header re-validates (checksum included) after every hop;
//   * token-bucket accounting: in deferred mode every CoPP consume is
//     recorded with the hop's exact (router, time, leg), times are
//     nondecreasing within the leg, and a hop appends at most the number
//     of gate elements in its chain.

struct ChainPools {
  // With fault elements present, only the fault-aware stamp path is valid.
  static constexpr sim::ElementOp kFaulted[] = {
      sim::ElementOp::kFaultInject, sim::ElementOp::kBaseLoss,
      sim::ElementOp::kSlowPathLoss, sim::ElementOp::kStormGate,
      sim::ElementOp::kCoppGate, sim::ElementOp::kEdgeFilter,
      sim::ElementOp::kTtl, sim::ElementOp::kStamp,
  };
  // Fault-free chains may use the trusted (and fused) fast paths.
  static constexpr sim::ElementOp kTrusted[] = {
      sim::ElementOp::kBaseLoss, sim::ElementOp::kSlowPathLoss,
      sim::ElementOp::kCoppGate, sim::ElementOp::kEdgeFilter,
      sim::ElementOp::kTtl, sim::ElementOp::kStampTrusted,
      sim::ElementOp::kTtlStampTrusted,
  };
};

TEST(PipelineComposition, RandomChainsPreserveConservationInvariants) {
  const sim::FaultPlan plan{sim::FaultParams::uniform(0.2)};
  sim::ElementSet elements;
  elements.fault.plan = &plan;
  elements.storm.plan = &plan;
  elements.stamp.plan = &plan;
  elements.base_loss.probability = 0.2;
  elements.slow_loss.probability = 0.2;

  std::mt19937_64 rng{0x5EED1701};
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE(testing::Message() << "round " << round);
    const bool faulted = (rng() & 1) != 0;
    const std::span<const sim::ElementOp> pool =
        faulted ? std::span<const sim::ElementOp>{ChainPools::kFaulted}
                : std::span<const sim::ElementOp>{ChainPools::kTrusted};
    sim::PackedRunList list = 0;
    const std::size_t chain_length = 1 + rng() % 8;
    std::size_t gates = 0;
    for (std::size_t k = 0; k < chain_length; ++k) {
      const sim::ElementOp op = pool[rng() % pool.size()];
      gates += op == sim::ElementOp::kCoppGate ? 1 : 0;
      list = run_list_append(list, op);
    }

    std::vector<std::uint8_t> bytes;
    pkt::build_ping(bytes, net::IPv4Address{10, 0, 0, 1},
                    net::IPv4Address{10, 0, 0, 2}, 7, 1,
                    static_cast<std::uint8_t>(2 + rng() % 62),
                    static_cast<int>(1 + rng() % 9));
    pkt::Ipv4HeaderView view{bytes};
    sim::NetCounters counters;
    sim::FaultCounters fault_counters;
    sim::ProbeTrace trace;
    sim::HopContext ctx;
    ctx.view = &view;
    ctx.bytes = bytes;
    ctx.has_options = true;
    ctx.flow = rng();
    ctx.src_as = 1;
    ctx.dst_as = 2;
    ctx.counters = &counters;
    ctx.fault_counters = &fault_counters;
    ctx.trace = &trace;

    const auto baseline = pkt::inspect_header(bytes);
    ASSERT_TRUE(baseline.has_value());
    const auto rr_capacity = pkt::rr_wire(bytes, baseline->rr_offset).capacity;

    double last_event_time = 0.0;
    for (std::size_t hop = 0; hop < 12; ++hop) {
      ctx.router = static_cast<topo::RouterId>(hop % 4);
      ctx.egress = net::IPv4Address{10, 1, 0,
                                    static_cast<std::uint8_t>(hop + 1)};
      ctx.as_id = static_cast<std::uint32_t>(1 + hop % 3);
      ctx.hop = hop;
      ctx.now = 0.05 * static_cast<double>(hop);

      const std::uint8_t ttl_before = bytes[8];
      const std::size_t events_before = trace.events.size();
      const sim::HopVerdict verdict = run_hop(list, elements, ctx);

      EXPECT_LE(bytes[8], ttl_before) << "TTL increased at hop " << hop;
      const auto info = pkt::inspect_header(bytes);
      ASSERT_TRUE(info.has_value()) << "header invalid after hop " << hop;
      EXPECT_EQ(info->header_bytes, baseline->header_bytes);
      EXPECT_EQ(info->total_length, baseline->total_length);
      // Faults may *remove* the RR option (strip blanks it to NOPs) but
      // nothing may move it or grow it past its capacity.
      if (info->rr_offset != 0) {
        EXPECT_EQ(info->rr_offset, baseline->rr_offset);
        EXPECT_LE(pkt::rr_wire(bytes, info->rr_offset).filled, rr_capacity);
      }

      EXPECT_LE(trace.events.size(), events_before + gates);
      for (std::size_t e = events_before; e < trace.events.size(); ++e) {
        EXPECT_EQ(trace.events[e].router, ctx.router);
        EXPECT_EQ(trace.events[e].time, ctx.now);
        EXPECT_FALSE(trace.events[e].reply_leg);
        EXPECT_GE(trace.events[e].time, last_event_time);
        last_event_time = trace.events[e].time;
      }
      if (verdict != sim::HopVerdict::kContinue) break;
    }
  }
}

}  // namespace
}  // namespace rr::measure
