// RFC 1624 incremental checksum equivalence: for any buffer whose stored
// checksum is valid (canonical, i.e. produced by a full RFC 1071
// recompute), applying IncrementalChecksum updates for the words that
// changed yields the same stored checksum as zeroing the field and
// recomputing from scratch. The hot path (packet/view.h) relies on this
// for TTL decrements, RR/TS stamps, and IP-ID rewrites; the sweeps here
// cover random word mutations, accumulated multi-word updates, the
// 0x0000 stored-checksum edge, 0x0000/0xFFFF word transitions, and the
// exact TTL/IP-ID/RR-stamp edit shapes on real ping datagrams.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/checksum.h"
#include "packet/datagram.h"
#include "packet/mutate.h"
#include "util/rng.h"

namespace rr::net {
namespace {

constexpr std::size_t kChecksumOffset = 10;  // IPv4 checksum field

std::uint16_t read16(std::span<const std::uint8_t> data, std::size_t off) {
  return static_cast<std::uint16_t>((data[off] << 8) | data[off + 1]);
}

void write16(std::span<std::uint8_t> data, std::size_t off,
             std::uint16_t value) {
  data[off] = static_cast<std::uint8_t>(value >> 8);
  data[off + 1] = static_cast<std::uint8_t>(value & 0xff);
}

/// Canonical checksum of `data` with the field at kChecksumOffset zeroed.
std::uint16_t full_recompute(std::vector<std::uint8_t> data) {
  write16(data, kChecksumOffset, 0);
  return internet_checksum(data);
}

/// Seals a buffer with its canonical checksum.
void seal(std::vector<std::uint8_t>& data) {
  write16(data, kChecksumOffset, full_recompute(data));
}

/// Rewrites the 16-bit word at `word * 2` and repairs the stored checksum
/// incrementally; the caller compares against full_recompute.
void mutate_word(std::vector<std::uint8_t>& data, std::size_t word,
                 std::uint16_t value) {
  IncrementalChecksum inc;
  inc.update(read16(data, word * 2), value);
  write16(data, word * 2, value);
  write16(data, kChecksumOffset, inc.apply(read16(data, kChecksumOffset)));
}

/// Writes `bytes` at `offset` and repairs the checksum with one update per
/// affected 16-bit word — the same word-level dedup the header view uses
/// for RR stamps whose pointer byte and slot bytes straddle words.
void edit_bytes(std::vector<std::uint8_t>& data, std::size_t offset,
                std::span<const std::uint8_t> bytes) {
  const std::size_t first = offset / 2;
  const std::size_t last = (offset + bytes.size() - 1) / 2;
  std::vector<std::uint16_t> old_words;
  for (std::size_t w = first; w <= last; ++w) {
    old_words.push_back(read16(data, w * 2));
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) data[offset + i] = bytes[i];
  IncrementalChecksum inc;
  for (std::size_t w = first; w <= last; ++w) {
    inc.update(old_words[w - first], read16(data, w * 2));
  }
  write16(data, kChecksumOffset, inc.apply(read16(data, kChecksumOffset)));
}

class IncrementalSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalSeeds, RandomWordMutationsMatchFullRecompute) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 20; ++trial) {
    // Random even-sized "header" (20..60 bytes, like IPv4 with options).
    std::vector<std::uint8_t> data(20 + 2 * rng.next_below(21));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    seal(data);
    for (int step = 0; step < 100; ++step) {
      std::size_t word = rng.next_below(data.size() / 2);
      if (word == kChecksumOffset / 2) word = 0;
      // Bias toward the all-zeros / all-ones words whose complements fold
      // through the 0xFFFF <-> 0x0000 boundary.
      const std::uint16_t value =
          rng.chance(0.25) ? (rng.chance(0.5) ? 0x0000 : 0xFFFF)
                           : static_cast<std::uint16_t>(rng());
      mutate_word(data, word, value);
      ASSERT_EQ(read16(data, kChecksumOffset), full_recompute(data))
          << "word " << word << " <- " << value << " at step " << step;
    }
  }
}

TEST_P(IncrementalSeeds, AccumulatedMultiWordUpdateMatchesFullRecompute) {
  util::Rng rng{GetParam() ^ 0xfeedULL};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(20 + 2 * rng.next_below(21));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    seal(data);
    // Several words change before one apply — the finish_stamp shape.
    IncrementalChecksum inc;
    const int edits = 1 + static_cast<int>(rng.next_below(6));
    for (int e = 0; e < edits; ++e) {
      std::size_t word = rng.next_below(data.size() / 2);
      if (word == kChecksumOffset / 2) word = 1;
      const std::uint16_t value = static_cast<std::uint16_t>(rng());
      inc.update(read16(data, word * 2), value);
      write16(data, word * 2, value);
    }
    write16(data, kChecksumOffset,
            inc.apply(read16(data, kChecksumOffset)));
    EXPECT_EQ(read16(data, kChecksumOffset), full_recompute(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IncrementalChecksumEdge, StoredChecksumOfZeroSurvivesUpdates) {
  // Engineer a buffer whose canonical checksum is exactly 0x0000: the
  // one's-complement sum of the non-checksum words must fold to 0xFFFF.
  std::vector<std::uint8_t> data(20, 0);
  write16(data, 0, 0x4500);
  write16(data, 2, 0xBAFF);  // 0x4500 + 0xBAFF = 0xFFFF
  seal(data);
  ASSERT_EQ(read16(data, kChecksumOffset), 0x0000);

  // Mutations starting from (and passing back through) the 0x0000 stored
  // value must keep agreeing with the full recompute.
  mutate_word(data, 2, 0x0000);  // no-op rewrite of an all-zero word
  EXPECT_EQ(read16(data, kChecksumOffset), full_recompute(data));
  mutate_word(data, 6, 0xFFFF);
  EXPECT_EQ(read16(data, kChecksumOffset), full_recompute(data));
  mutate_word(data, 6, 0x0000);  // back to the engineered original
  EXPECT_EQ(read16(data, kChecksumOffset), 0x0000);
}

TEST(IncrementalChecksumEdge, NoOpUpdateKeepsChecksum) {
  std::vector<std::uint8_t> data(20);
  util::Rng rng{99};
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  seal(data);
  const std::uint16_t before = read16(data, kChecksumOffset);
  const std::uint16_t word = read16(data, 4);
  mutate_word(data, 2, word);  // rewrite with the identical value
  mutate_word(data, 2, word);
  EXPECT_EQ(read16(data, kChecksumOffset), before);
}

TEST(IncrementalChecksumEdge, ZeroAndAllOnesWordTransitions) {
  // Every pairing of {random, 0x0000, 0xFFFF} -> {random, 0x0000, 0xFFFF}.
  const std::uint16_t values[] = {0x0000, 0xFFFF, 0x1234, 0xEDCB};
  for (const std::uint16_t from : values) {
    for (const std::uint16_t to : values) {
      std::vector<std::uint8_t> data(20);
      util::Rng rng{static_cast<std::uint64_t>(from) << 16 | to};
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());
      write16(data, 6, from);
      seal(data);
      mutate_word(data, 3, to);
      EXPECT_EQ(read16(data, kChecksumOffset), full_recompute(data))
          << from << " -> " << to;
    }
  }
}

// ------------------------------------------------ real header edit shapes

class HeaderEditSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeaderEditSeeds, TtlIpIdAndRrStampEditsMatchRewriteChecksum) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 20; ++trial) {
    const int slots = 1 + static_cast<int>(rng.next_below(9));
    const auto ping = pkt::make_ping(
        net::IPv4Address{static_cast<std::uint32_t>(rng())},
        net::IPv4Address{static_cast<std::uint32_t>(rng())},
        static_cast<std::uint16_t>(rng()), 1,
        static_cast<std::uint8_t>(rng.next_in(30, 255)), slots);
    auto incremental = *ping.serialize();
    auto recomputed = incremental;

    constexpr std::size_t kRrOption = 20;  // first (only) option
    for (int step = 0; step < 40; ++step) {
      switch (rng.next_below(3)) {
        case 0: {  // TTL decrement: high byte of word 4
          if (incremental[8] == 0) break;
          const std::uint8_t ttl = incremental[8];
          const std::uint8_t edit[1] = {static_cast<std::uint8_t>(ttl - 1)};
          edit_bytes(incremental, 8, edit);
          recomputed[8] = static_cast<std::uint8_t>(ttl - 1);
          ASSERT_TRUE(pkt::rewrite_header_checksum(recomputed));
          break;
        }
        case 1: {  // IP-ID rewrite: word 2
          const std::uint16_t id = static_cast<std::uint16_t>(rng());
          const std::uint8_t edit[2] = {static_cast<std::uint8_t>(id >> 8),
                                        static_cast<std::uint8_t>(id & 0xff)};
          edit_bytes(incremental, 4, edit);
          recomputed[4] = edit[0];
          recomputed[5] = edit[1];
          ASSERT_TRUE(pkt::rewrite_header_checksum(recomputed));
          break;
        }
        default: {  // RR stamp: pointer byte + 4 slot bytes, contiguous
          const std::uint8_t length = incremental[kRrOption + 1];
          const std::uint8_t pointer = incremental[kRrOption + 2];
          if (pointer >= length) break;  // full
          const std::uint32_t addr = static_cast<std::uint32_t>(rng());
          const std::uint8_t edit[5] = {
              static_cast<std::uint8_t>(pointer + 4),
              static_cast<std::uint8_t>(addr >> 24),
              static_cast<std::uint8_t>(addr >> 16),
              static_cast<std::uint8_t>(addr >> 8),
              static_cast<std::uint8_t>(addr & 0xff)};
          edit_bytes(incremental, kRrOption + 2, edit);
          for (int i = 0; i < 5; ++i) {
            recomputed[kRrOption + 2 + i] = edit[i];
          }
          ASSERT_TRUE(pkt::rewrite_header_checksum(recomputed));
          break;
        }
      }
      ASSERT_EQ(incremental, recomputed) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderEditSeeds,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace rr::net
