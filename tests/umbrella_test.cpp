// The umbrella header must be self-contained and expose the whole API.
#include "rropt.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesEveryLayer) {
  // One symbol per layer proves the includes resolve and link.
  EXPECT_EQ(rr::pkt::kMaxRrSlots, 9);
  EXPECT_EQ(rr::net::IPv4Address(1, 2, 3, 4).to_string(), "1.2.3.4");
  EXPECT_EQ(static_cast<int>(rr::topo::Epoch::k2016), 1);
  EXPECT_NE(rr::util::hash_label("rropt"), 0u);
  const rr::measure::RrObservation obs;
  EXPECT_FALSE(obs.rr_reachable());
  const rr::analysis::Cdf cdf;
  EXPECT_TRUE(cdf.empty());
}

}  // namespace
