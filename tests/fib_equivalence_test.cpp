// End-to-end equivalence for the compiled forwarding plane: a campaign's
// frozen dataset must be byte-identical (same content hash) whether paths
// come from the compiled FIB or the legacy sharded cache + stitcher, at
// any thread count, and — for a fixed block size — in streaming mode too.
// This is the acceptance gate that lets use_compiled_fib default to on.

#include <gtest/gtest.h>

#include <cstdint>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/testbed.h"

namespace rr {
namespace {

using measure::Campaign;
using measure::CampaignConfig;
using measure::Testbed;
using measure::TestbedConfig;

std::uint64_t campaign_hash(Testbed& testbed, const CampaignConfig& config) {
  const Campaign campaign = Campaign::run(testbed, config);
  return data::CampaignDataset::from_campaign(campaign, "fib-equivalence")
      .content_hash();
}

TEST(FibEquivalence, DatasetHashIdenticalAcrossFibAndThreads) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 20170331;
  Testbed testbed{config};

  CampaignConfig reference_config;
  reference_config.use_compiled_fib = false;
  reference_config.threads = 1;
  const std::uint64_t reference = campaign_hash(testbed, reference_config);

  for (const bool fib : {false, true}) {
    for (const int threads : {1, 4}) {
      if (!fib && threads == 1) continue;  // that run produced `reference`
      CampaignConfig campaign_config;
      campaign_config.use_compiled_fib = fib;
      campaign_config.threads = threads;
      EXPECT_EQ(campaign_hash(testbed, campaign_config), reference)
          << "fib=" << fib << " threads=" << threads;
    }
  }
}

TEST(FibEquivalence, StreamingHashIdenticalAcrossFibAndThreads) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 20170331;
  Testbed testbed{config};

  // A block size smaller than the destination count, so the campaign
  // actually iterates several blocks (test_scale yields a few hundred
  // destinations).
  constexpr std::size_t kBlock = 64;

  CampaignConfig reference_config;
  reference_config.use_compiled_fib = false;
  reference_config.threads = 1;
  reference_config.stream_block = kBlock;
  const std::uint64_t reference = campaign_hash(testbed, reference_config);

  for (const bool fib : {false, true}) {
    for (const int threads : {1, 4}) {
      if (!fib && threads == 1) continue;
      CampaignConfig campaign_config;
      campaign_config.use_compiled_fib = fib;
      campaign_config.threads = threads;
      campaign_config.stream_block = kBlock;
      EXPECT_EQ(campaign_hash(testbed, campaign_config), reference)
          << "fib=" << fib << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace rr
