// Parameterized measurement-pipeline properties across seeds: campaign
// invariants, classification consistency, reachability monotonicity, and
// cross-checks between the measurement-side inferences and simulator
// ground truth (used only to validate, never to measure).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/reachability.h"
#include "measure/reclassify.h"
#include "measure/testbed.h"

namespace rr::measure {
namespace {

class CampaignWorld : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = GetParam();
    testbed_ = std::make_unique<Testbed>(config);
    CampaignConfig campaign_config;
    campaign_config.destination_stride = 2;  // every other prefix: faster
    campaign_ = std::make_unique<Campaign>(
        Campaign::run(*testbed_, campaign_config));
  }
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<Campaign> campaign_;
};

TEST_P(CampaignWorld, ReachableImpliesResponsiveImpliesObserved) {
  for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
    if (campaign_->rr_reachable(d)) {
      EXPECT_TRUE(campaign_->rr_responsive(d));
    }
    for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
      const auto& obs = campaign_->at(v, d);
      if (obs.rr_responsive()) {
        EXPECT_TRUE(obs.responded());
      }
      if (obs.rr_reachable()) {
        EXPECT_GE(obs.stamp_count, obs.dest_slot);
      }
    }
  }
}

TEST_P(CampaignWorld, StampAccountingNeverExceedsNineSlots) {
  for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
    for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
      const auto& obs = campaign_->at(v, d);
      EXPECT_LE(static_cast<int>(obs.stamp_count) + obs.free_slots, 9);
      EXPECT_LE(obs.dest_slot, 9);
    }
  }
}

TEST_P(CampaignWorld, TableTotalsAreExactPartitions) {
  const auto table = build_response_table(*campaign_);
  for (const auto& side : {table.by_ip, table.by_as}) {
    std::uint64_t probed = 0, ping = 0, rr = 0;
    for (int t = 1; t <= topo::kNumAsTypes; ++t) {
      probed += side[static_cast<std::size_t>(t)].probed;
      ping += side[static_cast<std::size_t>(t)].ping_responsive;
      rr += side[static_cast<std::size_t>(t)].rr_responsive;
    }
    EXPECT_EQ(probed, side[0].probed);
    EXPECT_EQ(ping, side[0].ping_responsive);
    EXPECT_EQ(rr, side[0].rr_responsive);
    EXPECT_LE(side[0].rr_responsive, side[0].probed);
  }
  EXPECT_EQ(table.by_ip[0].probed, campaign_->num_destinations());
}

TEST_P(CampaignWorld, MinDistanceIsMonotoneInTheVpSubset) {
  std::vector<std::size_t> small, big;
  for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
    big.push_back(v);
    if (v % 3 == 0) small.push_back(v);
  }
  for (std::size_t d = 0; d < campaign_->num_destinations(); d += 5) {
    const int dist_small = campaign_->min_rr_distance(d, small);
    const int dist_big = campaign_->min_rr_distance(d, big);
    if (dist_small > 0) {
      ASSERT_GT(dist_big, 0);
      EXPECT_LE(dist_big, dist_small);
    }
  }
}

TEST_P(CampaignWorld, FractionWithinIsMonotoneInTheLimit) {
  const auto responsive = campaign_->rr_responsive_indices();
  std::vector<std::size_t> all(campaign_->num_vps());
  for (std::size_t v = 0; v < all.size(); ++v) all[v] = v;
  double previous = 0.0;
  for (int limit = 1; limit <= 9; ++limit) {
    const double fraction =
        fraction_within(*campaign_, all, responsive, limit);
    EXPECT_GE(fraction, previous);
    previous = fraction;
  }
  EXPECT_DOUBLE_EQ(
      previous,
      static_cast<double>(campaign_->rr_reachable_indices().size()) /
          static_cast<double>(responsive.size()));
}

TEST_P(CampaignWorld, ObservationsMatchGroundTruthCausality) {
  // Ground-truth cross-check: a destination the simulator marks as
  // ping-unresponsive can never appear responsive in the campaign, and a
  // destination whose own device drops options can never be RR-responsive.
  const auto& behaviors = testbed_->behaviors();
  for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
    const auto host_id = campaign_->destinations()[d];
    const auto& hb = behaviors.host(host_id);
    if (!hb.ping_responsive) {
      EXPECT_FALSE(campaign_->ping_responsive(d));
      EXPECT_FALSE(campaign_->rr_responsive(d));
    }
    if (hb.rr_handling != sim::RrHandling::kCopy) {
      EXPECT_FALSE(campaign_->rr_responsive(d));
    }
  }
}

TEST_P(CampaignWorld, ReachabilityNeverContradictsStampTruth) {
  // If the campaign says RR-reachable via the direct test, the device
  // must stamp itself with its probed address (ground truth).
  const auto& behaviors = testbed_->behaviors();
  for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
    if (!campaign_->rr_reachable(d)) continue;
    const auto host_id = campaign_->destinations()[d];
    const auto& hb = behaviors.host(host_id);
    EXPECT_TRUE(hb.stamps_self);
    EXPECT_EQ(hb.stamp_address,
              campaign_->topology().host_at(host_id).address);
  }
}

TEST_P(CampaignWorld, ReclassificationCandidatesAreExactlyTheGap) {
  const auto candidates = reclassification_candidates(*campaign_);
  const std::unordered_set<std::size_t> candidate_set(candidates.begin(),
                                                      candidates.end());
  for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
    const bool expected =
        campaign_->rr_responsive(d) && !campaign_->rr_reachable(d);
    EXPECT_EQ(candidate_set.contains(d), expected);
  }
}

TEST_P(CampaignWorld, RecordedUnionOnlyContainsAssignedAddresses) {
  const auto& topology = campaign_->topology();
  for (std::size_t d = 0; d < campaign_->num_destinations(); d += 3) {
    for (const auto& addr : campaign_->recorded_union(d)) {
      EXPECT_TRUE(topology.owner_of(addr).has_value())
          << addr.to_string() << " recorded but never assigned";
    }
  }
}

TEST_P(CampaignWorld, GreedyNeverBeatsItsOwnCandidateUnion) {
  const auto reachable = campaign_->rr_reachable_indices();
  if (reachable.empty()) GTEST_SKIP();
  const auto mlab = vp_indices_of_platform(*campaign_, topo::Platform::kMLab);
  const auto greedy = greedy_vp_selection(*campaign_, mlab, reachable, 4);
  const double union_coverage =
      fraction_within(*campaign_, mlab, reachable, 9);
  for (double coverage : greedy.coverage) {
    EXPECT_LE(coverage, union_coverage + 1e-9);
  }
  // And the first pick is optimal among single candidates.
  if (!greedy.chosen_vps.empty()) {
    for (std::size_t v : mlab) {
      EXPECT_LE(fraction_within(*campaign_, {v}, reachable, 9),
                greedy.coverage.front() + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignWorld,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace rr::measure
