// Steady-state allocation harness for the probe hot path.
//
// Replaces the global allocator with a counting shim, warms a prober and
// its network context on a fixed destination sweep, and then asserts two
// properties the zero-copy refactor promises:
//
//   1. zero steady-state allocations: a warmed-up serial probe exchange
//      (build -> walk -> reply -> parse) performs no heap allocation at
//      all — every buffer (probe datagram, reply scratch, result vectors,
//      trace events) is recycled;
//   2. flat growth counters: Prober::buffer_growths() and the context's
//      ReplyScratch growths stop moving once the largest probe/reply
//      geometry has been seen, and two identical campaigns report
//      identical CampaignAllocStats.
//
// This is a standalone binary (not gtest) because the allocator override
// must own the whole process: linking a test framework that allocates on
// its own schedule would make "zero allocations between two points" racy
// against framework bookkeeping.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

static std::atomic<std::uint64_t> g_allocations{0};

namespace {
void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#include <algorithm>
#include <array>
#include <memory>
#include <span>

#include "measure/campaign.h"
#include "measure/testbed.h"
#include "probe/prober.h"
#include "probe/types.h"
#include "sim/network.h"

namespace {

int g_failures = 0;

#define CHECK(cond)                                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      ++g_failures;                                                        \
    }                                                                      \
  } while (0)

#define CHECK_EQ_U64(a, b)                                                  \
  do {                                                                      \
    const std::uint64_t va = (a), vb = (b);                                 \
    if (va != vb) {                                                         \
      std::fprintf(stderr, "FAIL %s:%d: %s (%llu) != %s (%llu)\n", __FILE__, \
                   __LINE__, #a, static_cast<unsigned long long>(va), #b,   \
                   static_cast<unsigned long long>(vb));                    \
      ++g_failures;                                                         \
    }                                                                       \
  } while (0)

void steady_state_prober_test(rr::measure::Testbed& testbed) {
  auto prober = testbed.make_prober(testbed.vps().front()->host, 20.0);
  rr::sim::SendContext ctx;
  rr::probe::ProbeResult result;

  const auto& topology = testbed.topology();
  const std::size_t n =
      std::min<std::size_t>(topology.destinations().size(), 64);

  // Two warm-up sweeps: the first grows every reusable buffer to its
  // steady geometry and populates the per-entity maps (path cache, IP-ID
  // counters, token buckets); the second confirms the clock-dependent
  // state (bucket refills) allocates nothing new either.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto target =
          topology.host_at(topology.destinations()[i]).address;
      prober.probe_into(rr::probe::ProbeSpec::ping_rr(target), &ctx, result);
      prober.probe_into(rr::probe::ProbeSpec::ping(target), &ctx, result);
    }
  }

  const std::uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t buffer_growths_before = prober.buffer_growths();
  const std::uint64_t scratch_growths_before = ctx.scratch.growths;

  std::uint64_t matched = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto target = topology.host_at(topology.destinations()[i]).address;
    prober.probe_into(rr::probe::ProbeSpec::ping_rr(target), &ctx, result);
    if (result.kind != rr::probe::ResponseKind::kNone) ++matched;
    prober.probe_into(rr::probe::ProbeSpec::ping(target), &ctx, result);
    if (result.kind != rr::probe::ResponseKind::kNone) ++matched;
  }

  const std::uint64_t allocated =
      g_allocations.load(std::memory_order_relaxed) - allocations_before;
  std::printf("steady-state sweep: %zu exchanges, %llu responses, "
              "%llu heap allocations\n",
              2 * n, static_cast<unsigned long long>(matched),
              static_cast<unsigned long long>(allocated));
  CHECK_EQ_U64(allocated, 0);
  CHECK_EQ_U64(prober.buffer_growths(), buffer_growths_before);
  CHECK_EQ_U64(ctx.scratch.growths, scratch_growths_before);
  CHECK(matched > n / 2);  // the sweep must be exercising real exchanges
}

void steady_state_batch_test(rr::measure::Testbed& testbed) {
  // Same promise as the scalar sweep, for the batched walk: once the
  // per-slot buffers, contexts, and result vectors have seen the largest
  // probe/reply geometry, a full probe_batch_into round trip (build ->
  // batched walks -> parse) allocates nothing.
  auto prober = testbed.make_prober(testbed.vps().back()->host, 20.0);
  constexpr std::size_t kBatch = rr::sim::WalkBatch::kMaxProbes;
  std::array<rr::sim::SendContext, kBatch> ctxs;
  std::array<rr::probe::ProbeResult, kBatch> results;
  std::array<rr::probe::ProbeSpec, kBatch> specs;

  const auto& topology = testbed.topology();
  const std::size_t n =
      std::min<std::size_t>(topology.destinations().size(), 64);

  const auto sweep_once = [&] {
    std::uint64_t matched = 0;
    for (std::size_t i = 0; i < n; i += kBatch) {
      const std::size_t m = std::min(kBatch, n - i);
      for (std::size_t k = 0; k < m; ++k) {
        const auto target =
            topology.host_at(topology.destinations()[i + k]).address;
        specs[k] = rr::probe::ProbeSpec::ping_rr(target);
      }
      prober.probe_batch_into(
          std::span<const rr::probe::ProbeSpec>{specs.data(), m},
          std::span<rr::sim::SendContext>{ctxs.data(), m},
          std::span<rr::probe::ProbeResult>{results.data(), m});
      for (std::size_t k = 0; k < m; ++k) {
        if (results[k].kind != rr::probe::ResponseKind::kNone) ++matched;
      }
    }
    return matched;
  };

  sweep_once();
  sweep_once();

  const std::uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t buffer_growths_before = prober.buffer_growths();

  const std::uint64_t matched = sweep_once();

  const std::uint64_t allocated =
      g_allocations.load(std::memory_order_relaxed) - allocations_before;
  std::printf("steady-state batch sweep: %zu exchanges, %llu responses, "
              "%llu heap allocations\n",
              n, static_cast<unsigned long long>(matched),
              static_cast<unsigned long long>(allocated));
  CHECK_EQ_U64(allocated, 0);
  CHECK_EQ_U64(prober.buffer_growths(), buffer_growths_before);
  CHECK(matched > n / 2);
}

void campaign_alloc_stats_test(rr::measure::Testbed& testbed) {
  rr::measure::CampaignConfig config;
  config.threads = 1;
  config.destination_stride = 8;

  const auto first = rr::measure::Campaign::run(testbed, config);
  const auto second = rr::measure::Campaign::run(testbed, config);
  const auto& a = first.alloc_stats();
  const auto& b = second.alloc_stats();

  std::printf("campaign alloc stats: %llu streams, %llu buffer growths, "
              "%llu scratch growths\n",
              static_cast<unsigned long long>(a.probe_streams),
              static_cast<unsigned long long>(a.probe_buffer_growths),
              static_cast<unsigned long long>(a.reply_scratch_growths));

  // Identical runs must report identical telemetry (growth is a pure
  // function of the probe stream), and growth must be bounded by a small
  // per-stream constant: each stream's buffers only grow while climbing
  // to the largest probe/reply geometry, never per probe.
  CHECK_EQ_U64(a.probe_streams, b.probe_streams);
  CHECK_EQ_U64(a.probe_buffer_growths, b.probe_buffer_growths);
  CHECK_EQ_U64(a.reply_scratch_growths, b.reply_scratch_growths);
  CHECK(a.probe_streams > 0);
  CHECK(a.probe_buffers >= a.probe_streams);
  CHECK(a.probe_buffer_growths <= a.probe_buffers * 8);
  CHECK(a.reply_scratch_growths <= a.probe_buffers * 8);
}

}  // namespace

int main() {
  rr::measure::TestbedConfig config;
  config.topo_params = rr::topo::TopologyParams::test_scale();
  config.topo_params.seed = 33;
  config.threads = 1;
  auto testbed = std::make_unique<rr::measure::Testbed>(config);

  steady_state_prober_test(*testbed);
  steady_state_batch_test(*testbed);
  campaign_alloc_stats_test(*testbed);

  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("alloc steady-state test passed\n");
  return 0;
}
