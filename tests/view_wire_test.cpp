// Equivalence of the zero-copy hot path (packet/view.h, packet/wire.h)
// with the legacy structured path (Datagram/Ipv4Header parse + serialize,
// packet/mutate.h free functions). The simulator's bit-for-bit golden and
// differential guarantees rest on these pairs producing identical bytes
// and identical accept/reject decisions — including after fault-layer
// byte surgery (blank_options / rr_truncate / rr_garble) that rewrites
// option content under a live view.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "packet/datagram.h"
#include "packet/mutate.h"
#include "packet/options.h"
#include "packet/view.h"
#include "packet/wire.h"
#include "util/rng.h"

namespace rr::pkt {
namespace {

using net::IPv4Address;

IPv4Address rand_addr(util::Rng& rng) {
  return IPv4Address{static_cast<std::uint32_t>(rng())};
}

// ------------------------------------------------ builders

TEST(WireBuilders, PingMatchesLegacySerialize) {
  std::vector<std::uint8_t> out;
  for (int slots = 0; slots <= 9; ++slots) {
    const auto legacy = *make_ping(IPv4Address(10, 0, 0, 1),
                                   IPv4Address(10, 0, 0, 2), 77, 5, 64, slots)
                             .serialize();
    build_ping(out, IPv4Address(10, 0, 0, 1), IPv4Address(10, 0, 0, 2), 77, 5,
               64, slots);
    EXPECT_EQ(out, legacy) << "slots " << slots;
  }
}

TEST(WireBuilders, PingTsMatchesLegacySerialize) {
  std::vector<std::uint8_t> out;
  for (int slots = 1; slots <= 4; ++slots) {
    const auto legacy = *make_ping_ts(IPv4Address(9, 9, 9, 9),
                                      IPv4Address(8, 8, 8, 8), 3, 2, 64, slots)
                            .serialize();
    build_ping_ts(out, IPv4Address(9, 9, 9, 9), IPv4Address(8, 8, 8, 8), 3, 2,
                  64, slots);
    EXPECT_EQ(out, legacy) << "slots " << slots;
  }
}

TEST(WireBuilders, UdpProbeMatchesLegacySerialize) {
  std::vector<std::uint8_t> out;
  for (int slots = 0; slots <= 9; ++slots) {
    const auto legacy =
        *make_udp_probe(IPv4Address(1, 2, 3, 4), IPv4Address(4, 3, 2, 1),
                        0x8001, 33435, 64, slots)
             .serialize();
    build_udp_probe(out, IPv4Address(1, 2, 3, 4), IPv4Address(4, 3, 2, 1),
                    0x8001, 33435, 64, slots);
    EXPECT_EQ(out, legacy) << "slots " << slots;
  }
}

TEST(WireBuilders, ReusedBufferRebuildsIdentically) {
  std::vector<std::uint8_t> out;
  build_ping(out, IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2), 1, 1, 64,
             9);
  const auto first = out;
  // A smaller build into the same (larger) buffer must shrink it exactly.
  const auto small = *make_ping(IPv4Address(1, 1, 1, 1),
                                IPv4Address(2, 2, 2, 2), 1, 2, 64, 0)
                          .serialize();
  build_ping(out, IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2), 1, 2, 64,
             0);
  EXPECT_EQ(out, small);
  build_ping(out, IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2), 1, 1, 64,
             9);
  EXPECT_EQ(out, first);
}

// ------------------------------------------------ view vs mutate.h

class ViewMutateSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewMutateSeeds, StampSequencesMatchMutateFunctions) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 25; ++trial) {
    // A datagram with both an RR and a TS option exercises both cached
    // offsets at once (the simulator's RR and TS probes each carry one).
    Datagram datagram;
    datagram.header.source = rand_addr(rng);
    datagram.header.destination = rand_addr(rng);
    datagram.header.ttl = static_cast<std::uint8_t>(rng.next_in(3, 255));
    datagram.header.identification = static_cast<std::uint16_t>(rng());
    datagram.header.protocol = IpProto::kIcmp;
    datagram.payload = IcmpMessage::echo_request(7, 1, 8);
    const int rr_slots = static_cast<int>(rng.next_in(1, 4));
    const int ts_slots = static_cast<int>(rng.next_in(1, 2));
    datagram.header.options.emplace_back(
        RecordRouteOption::empty(static_cast<std::uint8_t>(rr_slots)));
    datagram.header.options.emplace_back(
        TimestampOption::empty(static_cast<std::uint8_t>(ts_slots)));

    auto via_view = *datagram.serialize();
    auto via_mutate = via_view;
    Ipv4HeaderView view{via_view};
    ASSERT_TRUE(view.valid());
    ASSERT_TRUE(view.has_options());

    for (int step = 0; step < 12; ++step) {
      switch (rng.next_below(3)) {
        case 0: {
          const auto a = view.decrement_ttl();
          const auto b = decrement_ttl(via_mutate);
          EXPECT_EQ(a, b);
          break;
        }
        case 1: {
          const IPv4Address addr = rand_addr(rng);
          EXPECT_EQ(view.rr_stamp(addr), rr_stamp(via_mutate, addr));
          break;
        }
        default: {
          const IPv4Address addr = rand_addr(rng);
          const std::uint32_t ms = static_cast<std::uint32_t>(rng());
          EXPECT_EQ(view.ts_stamp(addr, ms), ts_stamp(via_mutate, addr, ms));
          break;
        }
      }
      ASSERT_EQ(via_view, via_mutate) << "trial " << trial << " step " << step;
    }
    // The mutated buffer still parses and carries a valid checksum.
    EXPECT_TRUE(Ipv4Header::parse(via_view).has_value());
  }
}

TEST_P(ViewMutateSeeds, OptionlessAndInvalidBuffersAreInert) {
  util::Rng rng{GetParam() ^ 0x5150ULL};
  // No options: stamps fail on both paths, TTL still works.
  auto plain = *make_ping(rand_addr(rng), rand_addr(rng), 1, 1, 64, 0)
                    .serialize();
  auto plain_mutate = plain;
  Ipv4HeaderView view{plain};
  EXPECT_TRUE(view.valid());
  EXPECT_FALSE(view.has_options());
  EXPECT_FALSE(view.rr_stamp(rand_addr(rng)));
  EXPECT_FALSE(rr_stamp(plain_mutate, IPv4Address(1, 1, 1, 1)));
  EXPECT_EQ(view.decrement_ttl(), decrement_ttl(plain_mutate));
  EXPECT_EQ(plain, plain_mutate);

  // Garbage: the view is inert exactly when mutate.h declines.
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    auto junk_mutate = junk;
    Ipv4HeaderView junk_view{junk};
    const auto a = junk_view.decrement_ttl();
    const auto b = decrement_ttl(junk_mutate);
    EXPECT_EQ(a.has_value(), b.has_value());
    EXPECT_EQ(junk, junk_mutate);
    if (!junk_view.valid()) {
      EXPECT_FALSE(junk_view.rr_stamp(IPv4Address(1, 2, 3, 4)));
    }
  }
}

TEST_P(ViewMutateSeeds, FaultSurgeryUnderALiveView) {
  util::Rng rng{GetParam() ^ 0xfaceULL};
  for (int trial = 0; trial < 20; ++trial) {
    auto via_view = *make_ping(rand_addr(rng), rand_addr(rng), 9, 1, 64, 9)
                         .serialize();
    auto via_mutate = via_view;
    Ipv4HeaderView view{via_view};

    // Stamp a couple of hops, then let the fault layer rewrite the option
    // bytes in place (boundaries never move), then keep stamping: the
    // view's per-call revalidation must track mutate.h exactly.
    for (int i = 0; i < 2; ++i) {
      const IPv4Address addr = rand_addr(rng);
      ASSERT_EQ(view.rr_stamp(addr), rr_stamp(via_mutate, addr));
    }
    const int fault = static_cast<int>(rng.next_below(3));
    if (fault == 0) {
      ASSERT_TRUE(blank_options(via_view));
      ASSERT_TRUE(blank_options(via_mutate));
    } else if (fault == 1) {
      ASSERT_TRUE(rr_truncate(via_view));
      ASSERT_TRUE(rr_truncate(via_mutate));
    } else {
      ASSERT_TRUE(rr_garble(via_view, IPv4Address(6, 6, 6, 6)));
      ASSERT_TRUE(rr_garble(via_mutate, IPv4Address(6, 6, 6, 6)));
    }
    ASSERT_EQ(via_view, via_mutate);

    for (int i = 0; i < 3; ++i) {
      const IPv4Address addr = rand_addr(rng);
      EXPECT_EQ(view.rr_stamp(addr), rr_stamp(via_mutate, addr));
      EXPECT_EQ(view.decrement_ttl(), decrement_ttl(via_mutate));
      ASSERT_EQ(via_view, via_mutate);
    }
    if (fault == 0 || fault == 1) {
      // Blanked (type -> NOP) or truncated (pointer past end): no further
      // stamps on either path.
      EXPECT_FALSE(view.rr_stamp(IPv4Address(1, 1, 1, 1)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewMutateSeeds,
                         ::testing::Values(21, 22, 23, 24, 25));

// ------------------------------------------------ inspect vs parse

class InspectSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InspectSeeds, AcceptedFieldsMatchDatagramParse) {
  util::Rng rng{GetParam()};
  std::vector<std::uint8_t> bytes;
  for (int trial = 0; trial < 30; ++trial) {
    const int kind = static_cast<int>(rng.next_below(3));
    if (kind == 0) {
      build_ping(bytes, rand_addr(rng), rand_addr(rng),
                 static_cast<std::uint16_t>(rng()),
                 static_cast<std::uint16_t>(rng()), 64,
                 static_cast<int>(rng.next_in(0, 9)));
    } else if (kind == 1) {
      build_ping_ts(bytes, rand_addr(rng), rand_addr(rng),
                    static_cast<std::uint16_t>(rng()),
                    static_cast<std::uint16_t>(rng()), 64,
                    static_cast<int>(rng.next_in(1, 4)));
    } else {
      build_udp_probe(bytes, rand_addr(rng), rand_addr(rng),
                      static_cast<std::uint16_t>(rng() | 0x8000),
                      static_cast<std::uint16_t>(33435 + rng.next_below(256)),
                      64, static_cast<int>(rng.next_in(0, 9)));
    }
    // Accrue some stamps so option geometry varies.
    for (int i = 0; i < static_cast<int>(rng.next_below(4)); ++i) {
      (void)rr_stamp(bytes, rand_addr(rng));
      (void)ts_stamp(bytes, rand_addr(rng), static_cast<std::uint32_t>(rng()));
    }

    const auto info = inspect_datagram(bytes);
    const auto parsed = Datagram::parse(bytes);
    ASSERT_EQ(info.has_value(), parsed.has_value());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->source, parsed->header.source);
    EXPECT_EQ(info->destination, parsed->header.destination);
    EXPECT_EQ(info->ttl, parsed->header.ttl);
    EXPECT_EQ(info->identification, parsed->header.identification);
    EXPECT_EQ(info->options_present, !parsed->header.options.empty());

    if (const auto* rr = parsed->header.record_route()) {
      ASSERT_NE(info->rr_offset, 0u);
      const RrWire wire = rr_wire(bytes, info->rr_offset);
      EXPECT_EQ(wire.capacity, rr->capacity);
      EXPECT_EQ(static_cast<std::size_t>(wire.filled), rr->recorded.size());
      for (std::size_t i = 0; i < rr->recorded.size(); ++i) {
        EXPECT_EQ(rr_slot(bytes, wire, i), rr->recorded[i]);
      }
    } else {
      EXPECT_EQ(info->rr_offset, 0u);
    }
    if (const auto* ts = find_timestamp(parsed->header.options)) {
      ASSERT_NE(info->ts_offset, 0u);
      const TsWire wire = ts_wire(bytes, info->ts_offset);
      EXPECT_EQ(wire.capacity, ts->capacity);
      EXPECT_EQ(static_cast<std::size_t>(wire.filled), ts->entries.size());
      EXPECT_EQ(wire.overflow, ts->overflow);
      for (std::size_t i = 0; i < ts->entries.size(); ++i) {
        const TsEntryWire entry = ts_entry(bytes, wire, i);
        EXPECT_EQ(entry.address, ts->entries[i].address);
        EXPECT_EQ(entry.timestamp_ms, ts->entries[i].timestamp_ms);
      }
    } else {
      EXPECT_EQ(info->ts_offset, 0u);
    }
  }
}

TEST_P(InspectSeeds, RejectionAgreesUnderCorruption) {
  util::Rng rng{GetParam() ^ 0xc0deULL};
  std::vector<std::uint8_t> pristine;
  build_ping(pristine, IPv4Address(1, 2, 3, 4), IPv4Address(4, 3, 2, 1), 1, 1,
             64, 9);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = pristine;
    const int flips = 1 + static_cast<int>(rng.next_below(3));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    EXPECT_EQ(inspect_datagram(bytes).has_value(),
              Datagram::parse(bytes).has_value());
  }
  // Truncations.
  for (std::size_t len = 0; len <= pristine.size(); ++len) {
    const std::span<const std::uint8_t> prefix{pristine.data(), len};
    EXPECT_EQ(inspect_datagram(prefix).has_value(),
              Datagram::parse(prefix).has_value());
  }
}

TEST_P(InspectSeeds, InspectHeaderMatchesIpv4HeaderParseOnQuotes) {
  util::Rng rng{GetParam() ^ 0xabba};
  std::vector<std::uint8_t> probe;
  build_udp_probe(probe, rand_addr(rng), rand_addr(rng), 0x8000, 33435, 64, 9);
  for (int i = 0; i < 3; ++i) (void)rr_stamp(probe, rand_addr(rng));
  // ICMP errors quote at least the header, truncating the transport: every
  // prefix of the datagram from the bare header up must agree.
  for (std::size_t len = 20; len <= probe.size(); ++len) {
    const std::span<const std::uint8_t> quote{probe.data(), len};
    const auto info = inspect_header(quote);
    const auto parsed = Ipv4Header::parse(quote);
    ASSERT_EQ(info.has_value(), parsed.has_value()) << "len " << len;
    if (info.has_value()) {
      EXPECT_EQ(info->source, parsed->source);
      EXPECT_EQ(info->destination, parsed->destination);
      EXPECT_EQ(info->protocol, static_cast<std::uint8_t>(parsed->protocol));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InspectSeeds, ::testing::Values(31, 32, 33));

// ------------------------------------------------ reply transforms

/// The legacy host echo reply (sim::Network before the zero-copy path):
/// parse the request, copy options verbatim, optionally stamp self.
std::vector<std::uint8_t> legacy_echo_reply(
    std::span<const std::uint8_t> request, std::uint16_t ip_id,
    bool keep_options, bool stamps_self, IPv4Address stamp_address,
    std::uint32_t ts_ms) {
  const auto datagram = Datagram::parse(request);
  EXPECT_TRUE(datagram.has_value());
  Datagram reply;
  reply.header.source = datagram->header.destination;
  reply.header.destination = datagram->header.source;
  reply.header.ttl = 64;
  reply.header.protocol = IpProto::kIcmp;
  reply.header.identification = ip_id;
  reply.payload = IcmpMessage::echo_reply_for(*datagram->icmp()->echo());
  if (keep_options && !datagram->header.options.empty()) {
    reply.header.options = datagram->header.options;
    if (auto* rr = reply.header.record_route(); rr != nullptr && stamps_self) {
      rr->stamp(stamp_address);
    }
    if (auto* ts = find_timestamp(reply.header.options);
        ts != nullptr && stamps_self) {
      ts->stamp(stamp_address, ts_ms);
    }
  }
  return *reply.serialize();
}

class ReplySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplySeeds, EchoReplyInplaceMatchesLegacySerialize) {
  util::Rng rng{GetParam()};
  std::vector<std::uint8_t> request;
  for (int trial = 0; trial < 30; ++trial) {
    const bool ts_probe = rng.chance(0.3);
    const int slots = static_cast<int>(rng.next_in(1, ts_probe ? 4 : 9));
    if (ts_probe) {
      build_ping_ts(request, rand_addr(rng), rand_addr(rng),
                    static_cast<std::uint16_t>(rng()), 4, 64, slots);
    } else {
      build_ping(request, rand_addr(rng), rand_addr(rng),
                 static_cast<std::uint16_t>(rng()), 4, 64, slots);
    }
    // Forward-path wear: TTL decrements and stamps, sometimes to overflow.
    const int hops = static_cast<int>(rng.next_below(12));
    for (int i = 0; i < hops; ++i) {
      ASSERT_TRUE(decrement_ttl(request).has_value());
      (void)rr_stamp(request, rand_addr(rng));
      (void)ts_stamp(request, rand_addr(rng),
                     static_cast<std::uint32_t>(rng()));
    }

    const std::uint16_t ip_id = static_cast<std::uint16_t>(rng());
    const bool stamps_self = rng.chance(0.7);
    const IPv4Address self = rand_addr(rng);
    const std::uint32_t ts_ms = static_cast<std::uint32_t>(rng());
    const auto legacy = legacy_echo_reply(request, ip_id, /*keep=*/true,
                                          stamps_self, self, ts_ms);

    auto inplace = request;
    const auto info = inspect_datagram(inplace);
    ASSERT_TRUE(info.has_value());
    echo_reply_inplace(inplace, *info, ip_id);
    if (stamps_self) {
      (void)rr_stamp(inplace, self);
      (void)ts_stamp(inplace, self, ts_ms);
    }
    finalize_checksums(inplace, info->header_bytes, info->total_length);
    EXPECT_EQ(inplace, legacy) << "trial " << trial;
    EXPECT_TRUE(Datagram::parse(inplace).has_value());
  }
}

TEST_P(ReplySeeds, StrippedReplyMatchesLegacySerialize) {
  util::Rng rng{GetParam() ^ 0x57ULL};
  std::vector<std::uint8_t> request;
  std::vector<std::uint8_t> out;
  for (int trial = 0; trial < 20; ++trial) {
    build_ping(request, rand_addr(rng), rand_addr(rng),
               static_cast<std::uint16_t>(rng()), 2, 64,
               static_cast<int>(rng.next_in(0, 9)));
    for (int i = 0; i < 3; ++i) (void)rr_stamp(request, rand_addr(rng));
    const std::uint16_t ip_id = static_cast<std::uint16_t>(rng());
    const auto legacy =
        legacy_echo_reply(request, ip_id, /*keep=*/false, false,
                          IPv4Address{}, 0);
    const auto info = inspect_datagram(request);
    ASSERT_TRUE(info.has_value());
    build_echo_reply_stripped(out, request, *info, ip_id);
    EXPECT_EQ(out, legacy);
  }
}

TEST_P(ReplySeeds, IcmpErrorMatchesLegacySerialize) {
  util::Rng rng{GetParam() ^ 0x911ULL};
  std::vector<std::uint8_t> offending;
  std::vector<std::uint8_t> out;
  for (const std::size_t depth : {std::size_t{0}, std::size_t{8},
                                  std::size_t{28}, std::size_t{1500}}) {
    for (int trial = 0; trial < 8; ++trial) {
      build_udp_probe(offending, rand_addr(rng), rand_addr(rng),
                      static_cast<std::uint16_t>(rng() | 0x8000), 33435, 64,
                      9);
      for (int i = 0; i < static_cast<int>(rng.next_below(5)); ++i) {
        (void)rr_stamp(offending, rand_addr(rng));
      }
      const IPv4Address from = rand_addr(rng);
      const auto dst = *peek_source(offending);
      const std::uint16_t ip_id = static_cast<std::uint16_t>(rng());
      const bool ttl_error = rng.chance(0.5);
      const auto type =
          ttl_error ? IcmpType::kTimeExceeded : IcmpType::kDestUnreachable;
      const std::uint8_t code = ttl_error ? 0 : kCodePortUnreachable;

      Datagram error;
      error.header.source = from;
      error.header.destination = dst;
      error.header.ttl = 64;
      error.header.protocol = IpProto::kIcmp;
      error.header.identification = ip_id;
      error.payload = IcmpMessage::error(type, code, offending, depth);
      const auto legacy = *error.serialize();

      build_icmp_error(out, static_cast<std::uint8_t>(type), code, from, dst,
                       ip_id, offending, depth);
      EXPECT_EQ(out, legacy) << "depth " << depth;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplySeeds, ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace rr::pkt
