// Differential harness: the same campaign run under a fault plan must obey
// the paper's classification invariants relative to the no-fault baseline.
//
//   * zero-fault plan -> bit-identical results (dataset-level equality);
//   * any plan -> faults only *remove* evidence: no destination gains
//     ping responsiveness, RR responsiveness, or RR reachability;
//   * addresses that appear in RR records only under faults are provably
//     bogus (0.0.0.0 from truncation, class E from garbling/byzantine
//     stamps) — a fault can never plant a plausible hop;
//   * Table 1 row sums stay conserved, and the simulator's aggregate
//     counters stay mutually consistent (every response has a cause).
//
// The same checks back the offline `rr-analyze --diff` mode; this harness
// proves them at fault rates 1% and 10% (the acceptance rates) plus an
// aggressive 25% as margin.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/testbed.h"
#include "sim/fault.h"

namespace rr::measure {
namespace {

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 1701;
    testbed_ = new Testbed{config};
    baseline_ = new Campaign{Campaign::run(*testbed_)};
  }
  static void TearDownTestSuite() {
    delete baseline_;
    baseline_ = nullptr;
    delete testbed_;
    testbed_ = nullptr;
  }

  static Campaign run_with_rate(double rate) {
    CampaignConfig config;
    config.faults = sim::FaultParams::uniform(rate);
    return Campaign::run(*testbed_, config);
  }

  /// Faults may only move classifications toward "less reachable".
  static void expect_monotone(const Campaign& base, const Campaign& faulted) {
    ASSERT_EQ(base.num_destinations(), faulted.num_destinations());
    for (std::size_t d = 0; d < base.num_destinations(); ++d) {
      EXPECT_FALSE(!base.ping_responsive(d) && faulted.ping_responsive(d))
          << "dest " << d << " gained ping responsiveness under faults";
      EXPECT_FALSE(!base.rr_responsive(d) && faulted.rr_responsive(d))
          << "dest " << d << " gained RR responsiveness under faults";
      EXPECT_FALSE(!base.rr_reachable(d) && faulted.rr_reachable(d))
          << "dest " << d << " gained RR reachability under faults";
    }
  }

  /// Any address recorded only under faults must be provably bogus:
  /// 0.0.0.0 (a truncated record) or class E (garble/byzantine stamps).
  static void expect_no_plausible_planted_addresses(const Campaign& base,
                                                    const Campaign& faulted) {
    for (std::size_t d = 0; d < base.num_destinations(); ++d) {
      const auto& known = base.recorded_union(d);
      for (const auto addr : faulted.recorded_union(d)) {
        if (std::find(known.begin(), known.end(), addr) != known.end()) {
          continue;
        }
        const bool zero = addr.value() == 0;
        const bool class_e = (addr.value() & 0xF0000000u) == 0xF0000000u;
        EXPECT_TRUE(zero || class_e)
            << "dest " << d << ": fault planted plausible address "
            << addr.to_string();
      }
    }
  }

  /// Per-type Table 1 rows must sum to the Total row in every column.
  static void expect_table_conserved(const Campaign& campaign) {
    const auto table = build_response_table(campaign);
    const auto check = [](const auto& rows, const char* axis) {
      std::uint64_t probed = 0, ping = 0, rr = 0;
      for (std::size_t i = 1; i < rows.size(); ++i) {
        probed += rows[i].probed;
        ping += rows[i].ping_responsive;
        rr += rows[i].rr_responsive;
      }
      EXPECT_EQ(probed, rows[0].probed) << axis;
      EXPECT_EQ(ping, rows[0].ping_responsive) << axis;
      EXPECT_EQ(rr, rows[0].rr_responsive) << axis;
    };
    check(table.by_ip, "by-IP");
    check(table.by_as, "by-AS");
  }

  /// Aggregate counter consistency: every outcome is accounted for. Reply
  /// legs share the drop counters with forward legs, so the relations are
  /// inequalities, not equalities.
  static void expect_counters_consistent(const sim::NetCounters& c) {
    EXPECT_LE(c.delivered + c.ttl_errors, c.sent);
    EXPECT_LE(c.responses, c.delivered + c.ttl_errors);
    EXPECT_LE(c.port_unreachables, c.delivered);
    EXPECT_LE(c.sent, c.delivered + c.ttl_errors + c.dropped_loss +
                          c.dropped_filter + c.dropped_rate_limit +
                          c.dropped_ttl + c.dropped_unroutable);
  }

  static Testbed* testbed_;
  static Campaign* baseline_;
};

Testbed* DifferentialTest::testbed_ = nullptr;
Campaign* DifferentialTest::baseline_ = nullptr;

TEST_F(DifferentialTest, ZeroFaultPlanDatasetIsBitIdentical) {
  CampaignConfig config;
  config.faults = sim::FaultParams{};  // explicit plan, all rates zero
  const Campaign with_plan = Campaign::run(*testbed_, config);
  const auto base_ds = data::CampaignDataset::from_campaign(*baseline_, "a");
  auto plan_ds = data::CampaignDataset::from_campaign(with_plan, "a");
  EXPECT_EQ(base_ds, plan_ds);
  EXPECT_EQ(testbed_->network().fault_counters().total(), 0u);
}

TEST_F(DifferentialTest, InvariantsHoldAtOnePercent) {
  const Campaign faulted = run_with_rate(0.01);
  EXPECT_GT(testbed_->network().fault_counters().total(), 0u);
  expect_monotone(*baseline_, faulted);
  expect_no_plausible_planted_addresses(*baseline_, faulted);
  expect_table_conserved(faulted);
  expect_counters_consistent(testbed_->network().counters());
}

TEST_F(DifferentialTest, InvariantsHoldAtTenPercent) {
  const Campaign faulted = run_with_rate(0.10);
  EXPECT_GT(testbed_->network().fault_counters().total(), 0u);
  expect_monotone(*baseline_, faulted);
  expect_no_plausible_planted_addresses(*baseline_, faulted);
  expect_table_conserved(faulted);
  expect_counters_consistent(testbed_->network().counters());
}

TEST_F(DifferentialTest, InvariantsHoldUnderAggressiveFaults) {
  const Campaign faulted = run_with_rate(0.25);
  expect_monotone(*baseline_, faulted);
  expect_no_plausible_planted_addresses(*baseline_, faulted);
  expect_table_conserved(faulted);
  expect_counters_consistent(testbed_->network().counters());
  // At 25% the plan must visibly bite: strictly fewer RR-responsive
  // destinations than baseline (the small world has plenty of them).
  std::size_t base_rr = 0, faulted_rr = 0;
  for (std::size_t d = 0; d < baseline_->num_destinations(); ++d) {
    base_rr += baseline_->rr_responsive(d) ? 1 : 0;
    faulted_rr += faulted.rr_responsive(d) ? 1 : 0;
  }
  EXPECT_LT(faulted_rr, base_rr);
}

// Every fault kind individually preserves monotonicity (catches a kind
// whose violation a uniform mix might statistically mask).
TEST_F(DifferentialTest, EachFaultKindAloneIsMonotone) {
  struct Knob {
    const char* name;
    double sim::FaultParams::* rate;
  };
  const Knob knobs[] = {
      {"rr_truncate", &sim::FaultParams::rr_truncate},
      {"rr_garble", &sim::FaultParams::rr_garble},
      {"checksum_corrupt", &sim::FaultParams::checksum_corrupt},
      {"option_strip", &sim::FaultParams::option_strip},
      {"byzantine_stamp", &sim::FaultParams::byzantine_stamp},
      {"quote_mangle", &sim::FaultParams::quote_mangle},
      {"storm", &sim::FaultParams::storm},
  };
  for (const auto& knob : knobs) {
    SCOPED_TRACE(knob.name);
    CampaignConfig config;
    config.faults.*(knob.rate) = 0.2;
    const Campaign faulted = Campaign::run(*testbed_, config);
    expect_monotone(*baseline_, faulted);
    expect_no_plausible_planted_addresses(*baseline_, faulted);
    expect_table_conserved(faulted);
  }
}

// ----------------------------------------------------- fault plan parsing

TEST(FaultPlanParse, AcceptsNoneUniformAndKnobs) {
  const auto none = sim::parse_fault_plan("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(none->any());

  const auto uniform = sim::parse_fault_plan("0.01");
  ASSERT_TRUE(uniform.has_value());
  EXPECT_DOUBLE_EQ(uniform->rr_garble, 0.01);
  EXPECT_DOUBLE_EQ(uniform->storm, 0.01);
  EXPECT_EQ(*uniform, sim::FaultParams::uniform(0.01));
  EXPECT_EQ(*sim::parse_fault_plan("uniform:0.01"), *uniform);

  const auto knobs =
      sim::parse_fault_plan("rr_garble=0.1,storm=0.05,seed=7");
  ASSERT_TRUE(knobs.has_value());
  EXPECT_DOUBLE_EQ(knobs->rr_garble, 0.1);
  EXPECT_DOUBLE_EQ(knobs->storm, 0.05);
  EXPECT_EQ(knobs->seed, 7u);
  EXPECT_DOUBLE_EQ(knobs->rr_truncate, 0.0);
}

TEST(FaultPlanParse, RejectsGarbage) {
  EXPECT_FALSE(sim::parse_fault_plan("1.5").has_value());
  EXPECT_FALSE(sim::parse_fault_plan("-0.1").has_value());
  EXPECT_FALSE(sim::parse_fault_plan("bogus_knob=0.1").has_value());
  EXPECT_FALSE(sim::parse_fault_plan("rr_garble=abc").has_value());
  EXPECT_FALSE(sim::parse_fault_plan("rr_garble").has_value());
  EXPECT_FALSE(sim::parse_fault_plan("uniform:x").has_value());
}

TEST(FaultPlanParse, InertPlanNeverFires) {
  const sim::FaultPlan plan;  // default constructed
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    EXPECT_FALSE(plan.truncate_rr(flow, 0, 3));
    EXPECT_FALSE(plan.corrupt_checksum(flow, 1, 0));
    EXPECT_FALSE(plan.storm_active(static_cast<topo::RouterId>(flow), 1.0));
  }
}

TEST(FaultPlanParse, DrawsAreDeterministicPureFunctions) {
  const auto params = sim::FaultParams::uniform(0.5);
  const sim::FaultPlan a{params};
  const sim::FaultPlan b{params};
  int fired = 0;
  for (std::uint64_t flow = 0; flow < 256; ++flow) {
    EXPECT_EQ(a.garble_rr(flow, 0, 2), b.garble_rr(flow, 0, 2));
    EXPECT_EQ(a.storm_active(3, 0.7), b.storm_active(3, 0.7));
    fired += a.garble_rr(flow, 0, 2) ? 1 : 0;
  }
  // ~50% rate: both outcomes occur.
  EXPECT_GT(fired, 64);
  EXPECT_LT(fired, 192);

  // Different seeds give different schedules.
  auto reseeded = params;
  reseeded.seed ^= 0xDEAD;
  const sim::FaultPlan c{reseeded};
  int differs = 0;
  for (std::uint64_t flow = 0; flow < 256; ++flow) {
    differs += a.garble_rr(flow, 0, 2) != c.garble_rr(flow, 0, 2) ? 1 : 0;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultPlanParse, BogusAddressesAreAlwaysClassE) {
  const sim::FaultPlan plan{sim::FaultParams::uniform(0.1)};
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const auto addr = plan.bogus_address(key);
    EXPECT_EQ(addr.value() & 0xF0000000u, 0xF0000000u) << key;
  }
}

}  // namespace
}  // namespace rr::measure
