// Stop-set determinism: the redundancy-aware trace census promises a
// bit-identical probe schedule at any worker-thread count (round-frozen
// global set, deferred commits in canonical VP order), and the stop-set
// consumers downstream of the campaign (TTL study / Figure 5) promise
// identical outputs on identically rebuilt worlds. Tier 2 — every case
// builds fresh worlds per thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/testbed.h"
#include "measure/trace_census.h"
#include "measure/ttl_study.h"

namespace rr::measure {
namespace {

measure::TestbedConfig world_config() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 777;
  return config;
}

TraceCensusResult census_at(int threads, bool stop_sets = true) {
  measure::Testbed testbed{world_config()};
  TraceCensusConfig config;
  config.per_vp_dests = 48;
  config.round = 8;
  config.threads = threads;
  config.use_stop_sets = stop_sets;
  return run_trace_census(testbed, config);
}

TEST(StopSetDeterminism, CensusScheduleIsIdenticalAtAnyThreadCount) {
  const auto t1 = census_at(1);
  for (const int threads : {2, 8}) {
    const auto tn = census_at(threads);
    // The schedule hash folds every trace's target, probe count, stop
    // TTLs, and full hop list per VP — bit-identical schedules or bust.
    EXPECT_EQ(tn.schedule_hash, t1.schedule_hash) << threads << " threads";
    EXPECT_EQ(tn.probes_sent, t1.probes_sent) << threads << " threads";
    EXPECT_EQ(tn.probes_saved, t1.probes_saved) << threads << " threads";
    EXPECT_EQ(tn.interface_hash, t1.interface_hash) << threads << " threads";
    EXPECT_EQ(tn.link_hash, t1.link_hash) << threads << " threads";
    EXPECT_EQ(tn.global_keys, t1.global_keys) << threads << " threads";
    EXPECT_EQ(tn.local_keys, t1.local_keys) << threads << " threads";
  }
  // The stop sets actually did something on this world, or the property
  // above is vacuous.
  EXPECT_GT(t1.stats.hits, 0u);
  EXPECT_GT(t1.probes_saved, 0u);
}

TEST(StopSetDeterminism, BaselineCensusIsAlsoThreadInvariant) {
  const auto t1 = census_at(1, /*stop_sets=*/false);
  const auto t8 = census_at(8, /*stop_sets=*/false);
  EXPECT_EQ(t8.schedule_hash, t1.schedule_hash);
  EXPECT_EQ(t8.probes_sent, t1.probes_sent);
  EXPECT_EQ(t8.interface_hash, t1.interface_hash);
  EXPECT_EQ(t8.link_hash, t1.link_hash);
}

TEST(StopSetDeterminism, DatasetAndFigure5AreThreadInvariant) {
  // The full consumer chain: campaign at k threads -> dataset content
  // hash, then the stop-set-seeded TTL study -> Figure 5 rows. Identical
  // worlds, identical outputs, at every k.
  std::uint64_t ref_hash = 0;
  std::vector<TtlStudyResult::Row> ref_rows;
  StopSetStats ref_stats;
  for (const int threads : {1, 2, 8}) {
    measure::Testbed testbed{world_config()};
    CampaignConfig campaign_config;
    campaign_config.threads = threads;
    auto campaign = Campaign::run(testbed, campaign_config);

    TtlStudyConfig study_config;
    study_config.per_vp_per_class = 40;
    const auto study = ttl_study(testbed, campaign, study_config);

    const auto dataset = data::CampaignDataset::from_campaign(
        std::move(campaign), "determinism probe");
    if (threads == 1) {
      ref_hash = dataset.content_hash();
      ref_rows = study.rows;
      ref_stats = study.stats;
      EXPECT_GT(study.stats.probes_saved, 0u)
          << "stop sets must fire for the invariance to mean anything";
      continue;
    }
    EXPECT_EQ(dataset.content_hash(), ref_hash) << threads << " threads";
    ASSERT_EQ(study.rows.size(), ref_rows.size()) << threads << " threads";
    for (std::size_t i = 0; i < study.rows.size(); ++i) {
      const auto& a = study.rows[i];
      const auto& b = ref_rows[i];
      EXPECT_EQ(a.ttl, b.ttl);
      EXPECT_EQ(a.near_sent, b.near_sent);
      EXPECT_EQ(a.near_replied, b.near_replied);
      EXPECT_EQ(a.near_expired, b.near_expired);
      EXPECT_EQ(a.far_sent, b.far_sent);
      EXPECT_EQ(a.far_replied, b.far_replied);
      EXPECT_EQ(a.far_expired, b.far_expired);
    }
    EXPECT_EQ(study.stats.probes_sent, ref_stats.probes_sent);
    EXPECT_EQ(study.stats.probes_saved, ref_stats.probes_saved);
  }
}

}  // namespace
}  // namespace rr::measure
