// Golden-file regression for the seed-default headline outputs: the Table 1
// text rendering and the Figure 1 series blocks for the test-scale world.
// Any change to topology generation, probing, classification, or figure
// rendering that shifts these bytes fails here first — with a readable diff
// instead of a distant assertion.
//
// To regenerate after an intentional change:
//   RROPT_UPDATE_GOLDEN=1 ./build/tests/test_golden_output
// then review the diff of tests/golden/*.txt like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/figures.h"
#include "measure/reachability.h"
#include "measure/testbed.h"
#include "util/strings.h"

namespace rr::measure {
namespace {

std::string golden_path(const char* name) {
  return std::string{RROPT_GOLDEN_DIR} + "/" + name;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void check_golden(const char* name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("RROPT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual;
    SUCCEED() << "updated " << path;
    return;
  }
  const auto expected = read_file(path);
  ASSERT_TRUE(expected.has_value())
      << path << " missing; run with RROPT_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(*expected, actual)
      << "golden mismatch for " << name
      << "; if intentional, regenerate with RROPT_UPDATE_GOLDEN=1 and "
         "review the diff";
}

class GoldenOutputTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    testbed_ = new Testbed{config};
    campaign_ = new Campaign{Campaign::run(*testbed_)};
  }
  static void TearDownTestSuite() {
    delete campaign_;
    campaign_ = nullptr;
    delete testbed_;
    testbed_ = nullptr;
  }

  static Testbed* testbed_;
  static Campaign* campaign_;
};

Testbed* GoldenOutputTest::testbed_ = nullptr;
Campaign* GoldenOutputTest::campaign_ = nullptr;

TEST_F(GoldenOutputTest, Table1MatchesGoldenFile) {
  static const char* kTypeNames[] = {"Total", "Transit/Access", "Enterprise",
                                     "Content", "Unknown"};
  const auto table = build_response_table(*campaign_);

  std::ostringstream out;
  const auto render = [&](const char* axis, const auto& rows) {
    analysis::TextTable text({axis, "probed", "ping", "ping-RR", "RR/ping"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      text.add_row({kTypeNames[i], util::with_commas(rows[i].probed),
                    util::percent(rows[i].ping_rate()),
                    util::percent(rows[i].rr_rate()),
                    util::percent(rows[i].rr_over_ping())});
    }
    out << text.to_string();
  };
  render("By IP", table.by_ip);
  out << "\n";
  render("By AS", table.by_as);
  check_golden("table1.txt", out.str());
}

TEST_F(GoldenOutputTest, Figure1MatchesGoldenFile) {
  const auto mlab =
      vp_indices_of_platform(*campaign_, topo::Platform::kMLab);
  const auto reachable = campaign_->rr_reachable_indices();
  const auto greedy = greedy_vp_selection(*campaign_, mlab, reachable, 10);

  const auto figure = figure1(*campaign_, greedy);
  std::ostringstream out;
  figure.print(out);
  check_golden("figure1.txt", out.str());
}

}  // namespace
}  // namespace rr::measure
