// Packet-corpus fuzz driver: throws arbitrary bytes at every parser in the
// packet layer and asserts two properties on each of them:
//
//   1. no-crash / no-UB: parsers reject garbage by returning nullopt, never
//      by reading out of bounds (run under ASan+UBSan in CI);
//   2. parse-serialize-parse fixpoint: for any input that parses, one
//      serialization canonicalizes it — serialize(parse(serialize(parse(b))))
//      == serialize(parse(b)) byte for byte.
//
// The in-place mutators of packet/mutate.h are additionally exercised for
// memory safety on arbitrary buffers (they may decline, they must not
// scribble out of bounds).
//
// Two entry points share the harness:
//   * a libFuzzer target (build with -DRROPT_LIBFUZZER=ON, which compiles
//     this file with -fsanitize=fuzzer and no main());
//   * a standalone main() that replays a built-in seed corpus through a
//     deterministic seeded mutator (util::Rng) — the mode CI runs. Knobs:
//       RROPT_FUZZ_ITERS    mutation iterations (default 20000)
//       RROPT_FUZZ_SECONDS  wall-clock budget that wins over the iteration
//                           count when set (CI uses 30)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "netbase/byte_io.h"
#include "packet/datagram.h"
#include "packet/icmp.h"
#include "packet/ipv4.h"
#include "packet/mutate.h"
#include "packet/options.h"
#include "packet/udp.h"
#include "packet/view.h"
#include "sim/element.h"
#include "sim/fault.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace {

using rr::net::ByteWriter;

[[noreturn]] void fail(const char* property,
                       std::span<const std::uint8_t> input) {
  std::fprintf(stderr, "FUZZ FAILURE: %s\ninput (%zu bytes):", property,
               input.size());
  for (const auto byte : input) std::fprintf(stderr, " %02x", byte);
  std::fprintf(stderr, "\n");
  std::abort();
}

#define FUZZ_CHECK(cond, property)          \
  do {                                      \
    if (!(cond)) fail((property), input);   \
  } while (0)

/// parse → serialize → parse → serialize must reach a fixpoint after the
/// first serialization (the parse is canonicalizing, the serializer is not
/// allowed to lose or invent information after that).
void check_options(std::span<const std::uint8_t> input) {
  const auto parsed = rr::pkt::parse_options(input);
  if (!parsed) return;
  ByteWriter w1;
  if (!rr::pkt::serialize_options(*parsed, w1)) {
    // A parsed list only fails to serialize when the input was longer than
    // a real option area can be (parse_options accepts any span length).
    FUZZ_CHECK(input.size() > static_cast<std::size_t>(rr::pkt::kMaxOptionBytes),
               "options: in-area parse refused to serialize");
    return;
  }
  const auto b2 = std::move(w1).take();
  const auto reparsed = rr::pkt::parse_options(b2);
  FUZZ_CHECK(reparsed.has_value(), "options: serialized form must reparse");
  ByteWriter w2;
  FUZZ_CHECK(rr::pkt::serialize_options(*reparsed, w2),
             "options: reparsed form must serialize");
  FUZZ_CHECK(std::move(w2).take() == b2, "options: fixpoint");
}

void check_ipv4(std::span<const std::uint8_t> input) {
  const auto parsed = rr::pkt::Ipv4Header::parse(input);
  if (!parsed) return;
  ByteWriter w1;
  FUZZ_CHECK(parsed->serialize(w1, 0), "ipv4: parsed header must serialize");
  const auto b2 = std::move(w1).take();
  const auto reparsed = rr::pkt::Ipv4Header::parse(b2);
  FUZZ_CHECK(reparsed.has_value(), "ipv4: serialized form must reparse");
  ByteWriter w2;
  FUZZ_CHECK(reparsed->serialize(w2, 0), "ipv4: reparsed must serialize");
  FUZZ_CHECK(std::move(w2).take() == b2, "ipv4: fixpoint");
}

void check_icmp(std::span<const std::uint8_t> input) {
  const auto parsed = rr::pkt::IcmpMessage::parse(input);
  if (!parsed) return;
  ByteWriter w1;
  parsed->serialize(w1);
  const auto b2 = std::move(w1).take();
  const auto reparsed = rr::pkt::IcmpMessage::parse(b2);
  FUZZ_CHECK(reparsed.has_value(), "icmp: serialized form must reparse");
  ByteWriter w2;
  reparsed->serialize(w2);
  FUZZ_CHECK(std::move(w2).take() == b2, "icmp: fixpoint");
}

void check_udp(std::span<const std::uint8_t> input) {
  const auto parsed = rr::pkt::UdpDatagram::parse(input);
  if (!parsed) return;
  ByteWriter w1;
  parsed->serialize(w1);
  const auto b2 = std::move(w1).take();
  const auto reparsed = rr::pkt::UdpDatagram::parse(b2);
  FUZZ_CHECK(reparsed.has_value(), "udp: serialized form must reparse");
  ByteWriter w2;
  reparsed->serialize(w2);
  FUZZ_CHECK(std::move(w2).take() == b2, "udp: fixpoint");
}

void check_datagram(std::span<const std::uint8_t> input) {
  const auto parsed = rr::pkt::Datagram::parse(input);
  if (!parsed) return;
  const auto b2 = parsed->serialize();
  FUZZ_CHECK(b2.has_value(), "datagram: parsed datagram must serialize");
  const auto reparsed = rr::pkt::Datagram::parse(*b2);
  FUZZ_CHECK(reparsed.has_value(), "datagram: serialized form must reparse");
  const auto b3 = reparsed->serialize();
  FUZZ_CHECK(b3.has_value(), "datagram: reparsed must serialize");
  FUZZ_CHECK(*b3 == *b2, "datagram: fixpoint");
}

/// The in-place mutators must be memory-safe on arbitrary buffers: each
/// either applies cleanly or declines, and a buffer that parsed before a
/// *successful* structural mutation still parses after it.
void check_mutators(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> buf(input.begin(), input.end());
  (void)rr::pkt::peek_ttl(buf);
  (void)rr::pkt::peek_protocol(buf);
  (void)rr::pkt::peek_source(buf);
  (void)rr::pkt::peek_destination(buf);
  (void)rr::pkt::has_ip_options(buf);
  (void)rr::pkt::find_rr(buf);

  const bool was_valid = rr::pkt::Datagram::parse(buf).has_value();
  const auto check_still_valid = [&](bool applied, const char* op) {
    if (!was_valid || !applied) return;
    if (!rr::pkt::Datagram::parse(buf).has_value()) fail(op, input);
    (void)op;
  };
  check_still_valid(rr::pkt::decrement_ttl(buf).has_value() &&
                        rr::pkt::peek_ttl(buf).value_or(1) != 0,
                    "mutate: decrement_ttl broke a valid datagram");
  check_still_valid(
      rr::pkt::rr_stamp(buf, rr::net::IPv4Address::from_bytes(10, 1, 2, 3)),
      "mutate: rr_stamp broke a valid datagram");
  check_still_valid(
      rr::pkt::ts_stamp(buf, rr::net::IPv4Address::from_bytes(10, 1, 2, 3),
                        12345),
      "mutate: ts_stamp broke a valid datagram");
  check_still_valid(rr::pkt::rr_truncate(buf),
                    "mutate: rr_truncate broke a valid datagram");
  check_still_valid(
      rr::pkt::rr_garble(buf,
                         rr::net::IPv4Address::from_bytes(240, 9, 9, 9)),
      "mutate: rr_garble broke a valid datagram");
  check_still_valid(rr::pkt::blank_options(buf),
                    "mutate: blank_options broke a valid datagram");
  check_still_valid(rr::pkt::strip_options(buf),
                    "mutate: strip_options broke a valid datagram");
  check_still_valid(rr::pkt::mangle_icmp_quote(buf),
                    "mutate: mangle_icmp_quote broke a valid datagram");
  // Checksum corruption must make a valid datagram *unparseable* (that is
  // its whole point), and must never crash on garbage.
  if (rr::pkt::corrupt_header_checksum(buf) && was_valid) {
    FUZZ_CHECK(!rr::pkt::Datagram::parse(buf).has_value(),
               "mutate: corrupt_header_checksum left the checksum valid");
  }
  (void)rr::pkt::rewrite_header_checksum(buf);
}

/// The element dataplane (sim/pipeline.h) walked over arbitrary bytes:
/// compiled run lists — including the trusted/fused stamping fast paths,
/// whose guards are exactly what garbage tries to slip past — must be
/// memory-safe on any buffer, and a walk whose every verdict is kContinue
/// must leave a valid datagram valid (elements maintain the checksum).
void check_pipeline_walk(std::span<const std::uint8_t> input) {
  using namespace rr::sim;
  static const RunTable trusted_table = compile_run_table(PipelineConfig{});
  static const RunTable faulted_table =
      compile_run_table(PipelineConfig{true, 0.1, 0.1});
  static const rr::sim::FaultPlan plan{FaultParams::uniform(0.05)};
  static const ElementSet elements = [] {
    ElementSet es;
    es.fault.plan = &plan;
    es.storm.plan = &plan;
    es.stamp.plan = &plan;
    es.base_loss.probability = 0.1;
    es.slow_loss.probability = 0.1;
    return es;
  }();

  const bool was_valid = rr::pkt::Datagram::parse(input).has_value();
  constexpr std::uint8_t kPersonalities[] = {
      HopRow::kStamps,
      HopRow::kStamps | HopRow::kRateLimited,
      HopRow::kFiltersEdge,
      HopRow::kHidden | HopRow::kStamps,
  };
  for (const bool faulted : {false, true}) {
    const RunTable& table = faulted ? faulted_table : trusted_table;
    for (const std::uint8_t flags : kPersonalities) {
      std::vector<std::uint8_t> buf(input.begin(), input.end());
      rr::pkt::Ipv4HeaderView view{buf};
      NetCounters counters;
      FaultCounters fault_counters;
      ProbeTrace trace;
      HopContext ctx;
      ctx.view = &view;
      ctx.bytes = buf;
      ctx.has_options = rr::pkt::has_ip_options(buf);
      ctx.flow = 0x1234;
      ctx.src_as = 1;
      ctx.dst_as = 2;
      ctx.counters = &counters;
      ctx.fault_counters = &fault_counters;
      ctx.trace = &trace;
      const PackedRunList list =
          table[(ctx.has_options ? HopRow::kNumPersonalities : 0) + flags];
      bool walked_clean = true;
      for (std::size_t hop = 0; hop < 8; ++hop) {
        ctx.router = static_cast<rr::topo::RouterId>(hop % 4);
        ctx.egress = rr::net::IPv4Address::from_bytes(
            10, 1, 0, static_cast<std::uint8_t>(hop + 1));
        ctx.as_id = static_cast<std::uint32_t>(1 + hop % 3);
        ctx.hop = hop;
        ctx.now = 0.05 * static_cast<double>(hop);
        if (run_hop(list, elements, ctx) != HopVerdict::kContinue) {
          walked_clean = false;
          break;
        }
      }
      if (was_valid && walked_clean) {
        FUZZ_CHECK(rr::pkt::Datagram::parse(buf).has_value(),
                   "pipeline: clean walk broke a valid datagram");
      }
    }
  }
}

void run_one(std::span<const std::uint8_t> input) {
  check_options(input);
  check_ipv4(input);
  check_icmp(input);
  check_udp(input);
  check_datagram(input);
  check_mutators(input);
  check_pipeline_walk(input);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  run_one({data, size});
  return 0;
}

#ifndef RROPT_LIBFUZZER

namespace {

using rr::net::IPv4Address;

/// Well-formed packets of every species the simulator produces, plus
/// hand-built pathological encodings that target the parsers' length and
/// pointer arithmetic.
std::vector<std::vector<std::uint8_t>> seed_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  const auto src = IPv4Address::from_bytes(10, 0, 0, 1);
  const auto dst = IPv4Address::from_bytes(10, 9, 9, 9);

  const auto add = [&](const rr::pkt::Datagram& d) {
    if (auto bytes = d.serialize()) corpus.push_back(std::move(*bytes));
  };
  add(rr::pkt::make_ping(src, dst, 7, 1));
  add(rr::pkt::make_ping(src, dst, 7, 2, 64, rr::pkt::kMaxRrSlots));
  add(rr::pkt::make_ping(src, dst, 7, 3, 1, 4));
  add(rr::pkt::make_ping_ts(src, dst, 7, 4));
  add(rr::pkt::make_udp_probe(src, dst, 4242, rr::pkt::kUdpProbePortBase));

  // A half-stamped ping-RR (what a mid-path router sees).
  {
    auto half = rr::pkt::make_ping(src, dst, 7, 5, 64, rr::pkt::kMaxRrSlots);
    auto bytes = half.serialize();
    if (bytes) {
      for (int i = 0; i < 4; ++i) {
        (void)rr::pkt::rr_stamp(*bytes,
                                IPv4Address::from_bytes(10, 0, 1, i));
        (void)rr::pkt::decrement_ttl(*bytes);
      }
      corpus.push_back(std::move(*bytes));
    }
  }

  // ICMP errors quoting a stamped probe (Time Exceeded / Port Unreachable).
  {
    const auto probe =
        rr::pkt::make_ping(src, dst, 7, 6, 3, rr::pkt::kMaxRrSlots);
    const auto probe_bytes = probe.serialize();
    if (probe_bytes) {
      rr::pkt::Datagram error;
      error.header.source = IPv4Address::from_bytes(10, 0, 3, 1);
      error.header.destination = src;
      error.header.protocol = rr::pkt::IpProto::kIcmp;
      error.payload = rr::pkt::IcmpMessage::error(
          rr::pkt::IcmpType::kTimeExceeded, 0, *probe_bytes, 8);
      add(error);
      error.payload = rr::pkt::IcmpMessage::error(
          rr::pkt::IcmpType::kDestUnreachable, 3, *probe_bytes, 8);
      add(error);
    }
  }

  // Bare option areas (parse_options operates on these directly).
  corpus.push_back({});                          // empty
  corpus.push_back({0x01, 0x01, 0x01, 0x00});    // NOP NOP NOP EOL
  corpus.push_back({0x07, 0x07, 0x04,            // RR, 1 slot, empty
                    0x00, 0x00, 0x00, 0x00, 0x00});
  corpus.push_back({0x07, 0x27, 0x28,            // RR, full 9 slots
                    0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
                    0x0a, 0x00, 0x00, 0x03, 0x0a, 0x00, 0x00, 0x04,
                    0x0a, 0x00, 0x00, 0x05, 0x0a, 0x00, 0x00, 0x06,
                    0x0a, 0x00, 0x00, 0x07, 0x0a, 0x00, 0x00, 0x08,
                    0x0a, 0x00, 0x00, 0x09, 0x00});
  // Pathological: RR length overruns the area; RR pointer 0; RR pointer
  // past length; TS pointer 0 (the ts_stamp regression); TS pointer
  // misaligned; option length 1 (flag-style, illegal here); truncated
  // mid-option.
  corpus.push_back({0x07, 0x28, 0x04, 0x00});
  corpus.push_back({0x07, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
  corpus.push_back({0x07, 0x07, 0x2c, 0x00, 0x00, 0x00, 0x00, 0x00});
  corpus.push_back({0x44, 0x0c, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
                    0x00, 0x00, 0x00, 0x00});
  corpus.push_back({0x44, 0x0c, 0x06, 0x01, 0x00, 0x00, 0x00, 0x00,
                    0x00, 0x00, 0x00, 0x00});
  corpus.push_back({0x83, 0x01});
  corpus.push_back({0x07, 0x07, 0x04, 0x00});

  // Truncated / implausible fixed headers.
  corpus.push_back({0x45});
  corpus.push_back(std::vector<std::uint8_t>(20, 0x00));
  corpus.push_back(std::vector<std::uint8_t>(20, 0xff));
  {
    std::vector<std::uint8_t> bad_ihl(24, 0);
    bad_ihl[0] = 0x4f;  // IHL 15 (60 bytes) but only 24 present
    corpus.push_back(std::move(bad_ihl));
  }
  return corpus;
}

/// Deterministic byte-level mutator (bit flips, byte sets, truncation,
/// extension, 16-bit tweaks) — no libFuzzer needed for the CI pass.
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes,
                                 rr::util::Rng& rng) {
  const int edits = 1 + static_cast<int>(rng.next_below(4));
  for (int e = 0; e < edits; ++e) {
    switch (rng.next_below(6)) {
      case 0:  // bit flip
        if (!bytes.empty()) {
          bytes[rng.next_below(bytes.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      case 1:  // byte set
        if (!bytes.empty()) {
          bytes[rng.next_below(bytes.size())] =
              static_cast<std::uint8_t>(rng.next_below(256));
        }
        break;
      case 2:  // truncate
        if (!bytes.empty()) {
          bytes.resize(rng.next_below(bytes.size()));
        }
        break;
      case 3:  // extend with random tail
        for (std::size_t n = rng.next_below(8) + 1; n-- > 0;) {
          bytes.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
        }
        break;
      case 4:  // tweak a plausible length/pointer field hard
        if (bytes.size() >= 4) {
          bytes[rng.next_below(4)] =
              static_cast<std::uint8_t>(rng.next_below(256));
        }
        break;
      default:  // duplicate a chunk (self-splice)
        if (bytes.size() >= 2) {
          const std::size_t at = rng.next_below(bytes.size() - 1);
          const std::size_t len =
              std::min<std::size_t>(rng.next_below(8) + 1,
                                    bytes.size() - at);
          bytes.insert(bytes.end(), bytes.begin() + at,
                       bytes.begin() + at + len);
        }
        break;
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0xF022;
  long long iters = 20000;
  double seconds = 0.0;
  if (const char* s = std::getenv("RROPT_FUZZ_ITERS")) iters = std::atoll(s);
  if (const char* s = std::getenv("RROPT_FUZZ_SECONDS")) seconds = std::atof(s);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }

  const auto corpus = seed_corpus();
  for (const auto& entry : corpus) run_one(entry);
  std::printf("seed corpus: %zu entries ok\n", corpus.size());

  rr::util::Rng rng{seed};
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  long long ran = 0;
  for (long long i = 0; seconds > 0.0 || i < iters; ++i, ++ran) {
    if (seconds > 0.0) {
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    const auto& base = corpus[rng.next_below(corpus.size())];
    const auto mutated = mutate(base, rng);
    run_one(mutated);
  }
  std::printf("fuzz: %lld mutated inputs ok (seed %llu)\n", ran,
              static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // RROPT_LIBFUZZER
