// Property tests for the compiled forwarding plane's flat structures:
// FlatLpm must agree with LpmTrie and AddressIndex with
// std::unordered_map on randomized corpora, including the edges a DIR-24-8
// layout can get wrong (/0 defaults, /32 leaves, overlapping prefixes,
// addresses outside every granule), plus spot checks that a generated
// topology's compiled services match its reference structures.

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/flat_lpm.h"
#include "netbase/lpm_trie.h"
#include "topology/address_index.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace rr {
namespace {

using net::IPv4Address;
using net::Prefix;

/// Probe set for one corpus: boundary addresses of every inserted prefix
/// plus uniform random addresses (which mostly miss).
std::vector<IPv4Address> probe_addresses(
    const std::vector<Prefix>& prefixes, util::Rng& rng, std::size_t extra) {
  std::vector<IPv4Address> out;
  for (const auto& prefix : prefixes) {
    const std::uint32_t base = prefix.base().value();
    const std::uint32_t span =
        prefix.length() == 0
            ? 0xffffffffu
            : static_cast<std::uint32_t>(
                  (std::uint64_t{1} << (32 - prefix.length())) - 1);
    out.push_back(IPv4Address{base});
    out.push_back(IPv4Address{base + span});          // broadcast end
    out.push_back(IPv4Address{base + span / 2});      // interior
    out.push_back(IPv4Address{base - 1});             // just below (wraps ok)
    out.push_back(IPv4Address{base + span + 1});      // just above (wraps ok)
  }
  for (std::size_t i = 0; i < extra; ++i) {
    out.push_back(IPv4Address{static_cast<std::uint32_t>(rng())});
  }
  return out;
}

void expect_equivalent(const net::LpmTrie<std::uint32_t>& trie,
                       const net::FlatLpm<std::uint32_t>& flat,
                       const std::vector<IPv4Address>& probes) {
  ASSERT_EQ(flat.size(), trie.size());
  for (const IPv4Address addr : probes) {
    const std::uint32_t* expected = trie.lookup(addr);
    const std::uint32_t* got = flat.lookup(addr);
    ASSERT_EQ(expected != nullptr, got != nullptr) << addr.to_string();
    if (expected != nullptr) {
      EXPECT_EQ(*expected, *got) << addr.to_string();
    }
    const auto expected_prefix = trie.lookup_prefix(addr);
    const auto got_prefix = flat.lookup_prefix(addr);
    ASSERT_EQ(expected_prefix.has_value(), got_prefix.has_value())
        << addr.to_string();
    if (expected_prefix) {
      EXPECT_EQ(expected_prefix->first, got_prefix->first)
          << addr.to_string();
      EXPECT_EQ(expected_prefix->second, got_prefix->second)
          << addr.to_string();
    }
  }
}

TEST(FlatLpm, MatchesTrieOnRandomCorpora) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng{seed * 0x9e3779b9ULL};
    net::LpmTrie<std::uint32_t> trie;
    std::vector<Prefix> prefixes;
    const std::size_t n = 50 + static_cast<std::size_t>(rng.next_below(400));
    for (std::size_t i = 0; i < n; ++i) {
      // Lengths biased toward the interesting bands: around the /24
      // granule boundary and the extremes.
      static constexpr std::uint8_t kLengths[] = {8,  12, 16, 20, 22, 23,
                                                  24, 25, 26, 28, 30, 31,
                                                  32, 0};
      const std::uint8_t length =
          kLengths[rng.next_below(std::size(kLengths))];
      const Prefix prefix{IPv4Address{static_cast<std::uint32_t>(rng())},
                          length};
      trie.insert(prefix, static_cast<std::uint32_t>(i));
      prefixes.push_back(prefix);
    }
    const net::FlatLpm<std::uint32_t> flat{trie};
    expect_equivalent(trie, flat, probe_addresses(prefixes, rng, 2000));
  }
}

TEST(FlatLpm, OverlappingPrefixStack) {
  // Nested prefixes over one /8: every length from /8 to /32 covering the
  // same address, so each probe depth picks a different winner.
  net::LpmTrie<std::uint32_t> trie;
  std::vector<Prefix> prefixes;
  const std::uint32_t base = 0x0a000000u;  // 10.0.0.0
  for (std::uint8_t length = 8; length <= 32; ++length) {
    const Prefix prefix{IPv4Address{base}, length};
    trie.insert(prefix, length);
    prefixes.push_back(prefix);
  }
  const net::FlatLpm<std::uint32_t> flat{trie};
  util::Rng rng{7};
  expect_equivalent(trie, flat, probe_addresses(prefixes, rng, 500));
  // The fully-covered address matches the /32; a sibling matches the /31...
  EXPECT_EQ(*flat.lookup(IPv4Address{base}), 32u);
  EXPECT_EQ(*flat.lookup(IPv4Address{base + 1}), 31u);
  EXPECT_EQ(*flat.lookup(IPv4Address{base + 2}), 30u);
  // ...and an address outside the /8 misses entirely.
  EXPECT_EQ(flat.lookup(IPv4Address{0x0b000000u}), nullptr);
}

TEST(FlatLpm, DefaultRouteAnswersEverything) {
  net::LpmTrie<std::uint32_t> trie;
  trie.insert(Prefix{IPv4Address{0}, 0}, 777u);
  trie.insert(Prefix{IPv4Address{0xc0a80000u}, 16}, 42u);  // 192.168/16
  const net::FlatLpm<std::uint32_t> flat{trie};
  // Inside the covered granule range, outside it, and at both ends of the
  // address space: the /0 must answer wherever the /16 does not.
  EXPECT_EQ(*flat.lookup(IPv4Address{0xc0a80101u}), 42u);
  EXPECT_EQ(*flat.lookup(IPv4Address{0x00000000u}), 777u);
  EXPECT_EQ(*flat.lookup(IPv4Address{0xffffffffu}), 777u);
  EXPECT_EQ(*flat.lookup(IPv4Address{0x08080808u}), 777u);
  const auto hit = flat.lookup_prefix(IPv4Address{0x08080808u});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, (Prefix{IPv4Address{0}, 0}));
}

TEST(FlatLpm, EmptyTableMissesEverything) {
  const net::LpmTrie<std::uint32_t> trie;
  const net::FlatLpm<std::uint32_t> flat{trie};
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.lookup(IPv4Address{0x01020304u}), nullptr);
  EXPECT_FALSE(flat.lookup_prefix(IPv4Address{0}).has_value());
}

TEST(AddressIndex, MatchesHashMapOnRandomCorpora) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng{seed * 0x51c0ffeeULL};
    topo::AddressIndex index;
    std::unordered_map<std::uint32_t, topo::AddressOwner> reference;
    const std::size_t n =
        100 + static_cast<std::size_t>(rng.next_below(3000));
    std::vector<std::uint32_t> keys;
    for (std::size_t i = 0; i < n; ++i) {
      // Small key space so replacements actually happen; always include
      // key 0 (the index's empty-slot sentinel) in the corpus.
      const std::uint32_t key =
          i == 0 ? 0u : static_cast<std::uint32_t>(rng.next_below(4096)) *
                            (static_cast<std::uint32_t>(rng()) | 1u);
      const topo::AddressOwner owner{
          rng.chance(0.5) ? topo::AddressOwner::Kind::kHost
                          : topo::AddressOwner::Kind::kRouter,
          static_cast<std::uint32_t>(rng.next_below(0x7fffffffu))};
      index.insert(net::IPv4Address{key}, owner);
      reference[key] = owner;
      keys.push_back(key);
    }
    ASSERT_EQ(index.size(), reference.size());
    for (const std::uint32_t key : keys) {
      const auto got = index.find(net::IPv4Address{key});
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, reference.at(key)) << key;
    }
    for (std::size_t i = 0; i < 2000; ++i) {
      const std::uint32_t key = static_cast<std::uint32_t>(rng());
      const auto got = index.find(net::IPv4Address{key});
      const auto it = reference.find(key);
      ASSERT_EQ(got.has_value(), it != reference.end()) << key;
      if (got) EXPECT_EQ(*got, it->second) << key;
    }
  }
}

TEST(CompiledTopology, FlatServicesMatchReferenceStructures) {
  const auto topo =
      topo::Generator{topo::TopologyParams::test_scale()}.generate();

  // as_of_address: the compiled flat table against the build trie, over
  // every assigned host address plus random probes.
  util::Rng rng{2016};
  for (const auto& host : topo->hosts()) {
    const auto flat = topo->as_of_address(host.address);
    const std::uint32_t* reference = topo->address_trie().lookup(host.address);
    ASSERT_TRUE(flat.has_value());
    ASSERT_NE(reference, nullptr);
    EXPECT_EQ(*flat, *reference);
  }
  for (std::size_t i = 0; i < 20000; ++i) {
    const net::IPv4Address addr{static_cast<std::uint32_t>(rng())};
    const auto flat = topo->as_of_address(addr);
    const std::uint32_t* reference = topo->address_trie().lookup(addr);
    ASSERT_EQ(flat.has_value(), reference != nullptr) << addr.to_string();
    if (flat) EXPECT_EQ(*flat, *reference);
  }

  // owner_of / aliases_of: alias views must contain the queried address
  // and agree with the owning device's interface list.
  for (const auto& router : topo->routers()) {
    for (const auto& addr : router.interfaces) {
      const auto owner = topo->owner_of(addr);
      ASSERT_TRUE(owner.has_value());
      EXPECT_EQ(owner->kind, topo::AddressOwner::Kind::kRouter);
      const auto aliases = topo->aliases_of(addr);
      EXPECT_EQ(aliases.size(), router.interfaces.size());
    }
  }
  std::size_t with_aliases = 0;
  for (const auto& host : topo->hosts()) {
    const auto aliases = topo->aliases_of(host.address);
    ASSERT_EQ(aliases.size(), 1 + host.aliases.size());
    EXPECT_EQ(aliases.front(), host.address);
    if (!host.aliases.empty()) ++with_aliases;
  }
  EXPECT_GT(with_aliases, 0u);  // the corpus exercised the arena path

  // Unassigned address: no owner, empty alias view.
  const net::IPv4Address unassigned{1};  // 0.0.0.1 precedes the address plan
  EXPECT_FALSE(topo->owner_of(unassigned).has_value());
  EXPECT_TRUE(topo->aliases_of(unassigned).empty());

  // vantage_points_in: the precompiled lists against a direct filter.
  for (const topo::Epoch epoch : {topo::Epoch::k2011, topo::Epoch::k2016}) {
    const auto compiled = topo->vantage_points_in(epoch);
    std::vector<const topo::VantagePoint*> reference;
    for (const auto& vp : topo->vantage_points()) {
      const bool exists =
          epoch == topo::Epoch::k2011 ? vp.exists_in_2011 : vp.exists_in_2016;
      if (exists) reference.push_back(&vp);
    }
    ASSERT_EQ(compiled.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(compiled[i], reference[i]);
    }
  }
}

}  // namespace
}  // namespace rr
