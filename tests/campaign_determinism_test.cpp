// The parallel campaign executor's contract: campaign contents are
// bit-for-bit identical at any worker-thread count, because all probe
// randomness is counter-based and the only shared mutable state (router
// token buckets) is replayed serially in a canonical order.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/testbed.h"
#include "sim/token_bucket.h"

namespace rr::measure {
namespace {

// --------------------------------------------------------------- buckets

// The property the deferred-replay phase relies on: a bucket's outcome
// sequence is a pure function of the ordered sequence of consume times it
// is fed — replaying the same series after reset() reproduces it exactly.
TEST(TokenBucketOrdering, ReplayOfSameTimeSeriesIsIdentical) {
  const std::vector<double> times = {0.0,  0.01, 0.02, 0.02, 0.05, 0.04,
                                     0.30, 0.31, 0.32, 1.00, 1.00, 1.50};
  sim::TokenBucket bucket{/*rate_per_s=*/10.0, /*burst=*/2.0};
  std::vector<bool> first;
  for (double t : times) first.push_back(bucket.try_consume(t));

  bucket.reset();
  std::vector<bool> second;
  for (double t : times) second.push_back(bucket.try_consume(t));

  EXPECT_EQ(first, second);
  // Sanity: the series actually exercises both outcomes, including a
  // backwards-time step (0.05 then 0.04) that must not refill.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

// Consumes at non-decreasing virtual times drain burst then track the
// refill rate; a backwards timestamp neither refills nor crashes.
TEST(TokenBucketOrdering, VirtualTimeSemantics) {
  sim::TokenBucket bucket{/*rate_per_s=*/1.0, /*burst=*/2.0};
  EXPECT_TRUE(bucket.try_consume(0.0));   // burst token 1
  EXPECT_TRUE(bucket.try_consume(0.0));   // burst token 2
  EXPECT_FALSE(bucket.try_consume(0.0));  // empty
  EXPECT_FALSE(bucket.try_consume(0.5));  // half a token refilled
  // 0.5s later a full token has accumulated (0.5 + 0.5).
  EXPECT_TRUE(bucket.try_consume(1.0));
  // Backwards time: no refill happened, bucket stays empty.
  EXPECT_FALSE(bucket.try_consume(0.2));
}

// -------------------------------------------------------------- campaign

void expect_identical(const Campaign& a, const Campaign& b) {
  ASSERT_EQ(a.num_vps(), b.num_vps());
  ASSERT_EQ(a.num_destinations(), b.num_destinations());
  for (std::size_t d = 0; d < a.num_destinations(); ++d) {
    EXPECT_EQ(a.ping_responsive(d), b.ping_responsive(d)) << "dest " << d;
    EXPECT_EQ(a.recorded_union(d), b.recorded_union(d)) << "dest " << d;
    EXPECT_EQ(a.rr_responsive(d), b.rr_responsive(d)) << "dest " << d;
    EXPECT_EQ(a.responding_vp_count(d), b.responding_vp_count(d))
        << "dest " << d;
    for (std::size_t v = 0; v < a.num_vps(); ++v) {
      ASSERT_EQ(a.at(v, d), b.at(v, d)) << "vp " << v << " dest " << d;
    }
  }
}

TEST(CampaignDeterminism, ContentsIdenticalAcrossThreadCounts) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 7;
  Testbed testbed{config};

  CampaignConfig campaign_config;
  campaign_config.threads = 1;
  const Campaign serial = Campaign::run(testbed, campaign_config);
  const sim::NetCounters serial_counters = testbed.network().counters();

  campaign_config.threads = 4;
  const Campaign parallel = Campaign::run(testbed, campaign_config);
  const sim::NetCounters parallel_counters = testbed.network().counters();

  expect_identical(serial, parallel);

  // Aggregate simulator counters come out identical too: the replay phase
  // substitutes exactly the counters a serial run would have produced.
  EXPECT_EQ(serial_counters.sent, parallel_counters.sent);
  EXPECT_EQ(serial_counters.delivered, parallel_counters.delivered);
  EXPECT_EQ(serial_counters.responses, parallel_counters.responses);
  EXPECT_EQ(serial_counters.dropped_loss, parallel_counters.dropped_loss);
  EXPECT_EQ(serial_counters.dropped_filter,
            parallel_counters.dropped_filter);
  EXPECT_EQ(serial_counters.dropped_rate_limit,
            parallel_counters.dropped_rate_limit);
  EXPECT_EQ(serial_counters.dropped_ttl, parallel_counters.dropped_ttl);
  EXPECT_EQ(serial_counters.dropped_unroutable,
            parallel_counters.dropped_unroutable);
  EXPECT_EQ(serial_counters.ttl_errors, parallel_counters.ttl_errors);
  EXPECT_EQ(serial_counters.port_unreachables,
            parallel_counters.port_unreachables);

  // A third thread count, for good measure.
  campaign_config.threads = 2;
  const Campaign two = Campaign::run(testbed, campaign_config);
  expect_identical(serial, two);
}

// A FaultPlan with every rate at zero must be indistinguishable from no
// plan at all: fault draws key on their own purpose space and a zero rate
// never consumes randomness, so contents AND counters stay bit-identical
// at every thread count.
TEST(CampaignDeterminism, ZeroFaultPlanIsBitIdenticalToBaseline) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 7;
  Testbed testbed{config};

  CampaignConfig baseline_config;
  baseline_config.threads = 1;
  const Campaign baseline = Campaign::run(testbed, baseline_config);
  const sim::NetCounters baseline_counters = testbed.network().counters();

  CampaignConfig zero_fault_config;
  zero_fault_config.faults = sim::FaultParams{};  // all rates zero
  for (const int threads : {1, 2, 4}) {
    zero_fault_config.threads = threads;
    const Campaign with_plan = Campaign::run(testbed, zero_fault_config);
    expect_identical(baseline, with_plan);
    const sim::NetCounters c = testbed.network().counters();
    EXPECT_EQ(baseline_counters.sent, c.sent) << threads << " threads";
    EXPECT_EQ(baseline_counters.responses, c.responses)
        << threads << " threads";
    EXPECT_EQ(baseline_counters.dropped_rate_limit, c.dropped_rate_limit)
        << threads << " threads";
    EXPECT_EQ(testbed.network().fault_counters().total(), 0u);
  }
}

// Fault injection preserves the determinism contract: a faulted campaign's
// contents are also bit-identical at any thread count (every fault draw is
// a pure function of the probe, and storm windows are stateless).
TEST(CampaignDeterminism, FaultedContentsIdenticalAcrossThreadCounts) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 7;
  Testbed testbed{config};

  CampaignConfig campaign_config;
  campaign_config.faults = sim::FaultParams::uniform(0.05);
  campaign_config.threads = 1;
  const Campaign serial = Campaign::run(testbed, campaign_config);
  EXPECT_GT(testbed.network().fault_counters().total(), 0u)
      << "the 5% plan must actually inject faults for this test to bite";
  const sim::NetCounters serial_counters = testbed.network().counters();

  for (const int threads : {2, 4}) {
    campaign_config.threads = threads;
    const Campaign parallel = Campaign::run(testbed, campaign_config);
    expect_identical(serial, parallel);
    const sim::NetCounters c = testbed.network().counters();
    EXPECT_EQ(serial_counters.sent, c.sent) << threads << " threads";
    EXPECT_EQ(serial_counters.delivered, c.delivered)
        << threads << " threads";
    EXPECT_EQ(serial_counters.responses, c.responses)
        << threads << " threads";
    EXPECT_EQ(serial_counters.dropped_rate_limit, c.dropped_rate_limit)
        << threads << " threads";
  }
}

// End-to-end freeze of the tentpole contract: the *frozen dataset bytes* —
// not just in-memory contents — are identical when both the world build
// and the campaign run at 1, 2, or 8 worker threads, and that holds for
// every streaming block size. (Different block sizes produce different
// datasets by design — block-major probe order — so the hash is compared
// within a block size, never across.)
TEST(CampaignDeterminism, DatasetHashIdenticalAcrossThreadsPerStreamBlock) {
  for (const std::size_t stream_block : {std::size_t{0}, std::size_t{7}}) {
    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const int threads : {1, 2, 8}) {
      TestbedConfig config;
      config.topo_params = topo::TopologyParams::test_scale();
      config.topo_params.seed = 7;
      config.topo_params.threads = threads;  // parallel world build too
      config.threads = threads;
      Testbed testbed{config};

      CampaignConfig campaign_config;
      campaign_config.threads = threads;
      campaign_config.stream_block = stream_block;
      auto campaign = Campaign::run(testbed, campaign_config);
      const std::uint64_t hash =
          data::CampaignDataset::from_campaign(std::move(campaign),
                                               "thread-identity probe")
              .content_hash();
      if (!have_reference) {
        reference = hash;
        have_reference = true;
      } else {
        EXPECT_EQ(reference, hash)
            << threads << " threads, stream_block " << stream_block;
      }
    }
  }
}

TEST(CampaignDeterminism, RateLimitersActuallyFire) {
  // The determinism guarantee would be vacuous if the small world never
  // exercised the deferred-bucket path; make sure the campaign above
  // polices some options traffic.
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 7;
  Testbed testbed{config};

  CampaignConfig campaign_config;
  campaign_config.threads = 4;
  (void)Campaign::run(testbed, campaign_config);
  EXPECT_GT(testbed.network().counters().dropped_rate_limit, 0u);
}

}  // namespace
}  // namespace rr::measure
