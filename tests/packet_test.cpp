// Wire-format tests: IPv4 options (Record Route), headers, ICMP, UDP,
// whole-datagram round trips, and the in-place router mutations.
#include <gtest/gtest.h>

#include "netbase/checksum.h"
#include "packet/datagram.h"
#include "packet/icmp.h"
#include "packet/ipv4.h"
#include "packet/mutate.h"
#include "packet/options.h"
#include "packet/udp.h"
#include "util/rng.h"

namespace rr::pkt {
namespace {

using net::IPv4Address;

// ---------------------------------------------------------------- options

TEST(RecordRouteOption, WireLayoutMatchesRfc791) {
  auto rr = RecordRouteOption::empty(9);
  EXPECT_EQ(rr.wire_length(), 39);  // 3 + 9*4
  EXPECT_EQ(rr.pointer(), 4);       // minimum legal pointer
  EXPECT_TRUE(rr.stamp(IPv4Address(10, 0, 0, 1)));
  EXPECT_EQ(rr.pointer(), 8);
  EXPECT_EQ(rr.remaining_slots(), 8);
}

TEST(RecordRouteOption, NineSlotsIsTheLimit) {
  auto rr = RecordRouteOption::empty(9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(rr.stamp(IPv4Address(10, 0, 0, static_cast<uint8_t>(i))));
  }
  EXPECT_TRUE(rr.full());
  EXPECT_FALSE(rr.stamp(IPv4Address(10, 0, 0, 99)));
  EXPECT_EQ(rr.recorded.size(), 9u);
}

TEST(Options, SerializeParseRoundTrip) {
  std::vector<IpOption> options;
  auto rr = RecordRouteOption::empty(9);
  ASSERT_TRUE(rr.stamp(IPv4Address(192, 0, 2, 1)));
  ASSERT_TRUE(rr.stamp(IPv4Address(192, 0, 2, 2)));
  options.emplace_back(rr);

  net::ByteWriter writer;
  ASSERT_TRUE(serialize_options(options, writer));
  EXPECT_EQ(writer.size() % 4, 0u);  // padded to 32-bit boundary
  EXPECT_EQ(writer.size(), 40u);     // 39 + 1 pad = max option area

  const auto parsed = parse_options(writer.view());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  const auto* parsed_rr = find_record_route(*parsed);
  ASSERT_NE(parsed_rr, nullptr);
  EXPECT_EQ(*parsed_rr, rr);
}

TEST(Options, NopAndRawRoundTrip) {
  std::vector<IpOption> options;
  options.emplace_back(NopOption{});
  options.emplace_back(RawOption{148, {0x01, 0x02}});  // router alert-ish

  net::ByteWriter writer;
  ASSERT_TRUE(serialize_options(options, writer));
  const auto parsed = parse_options(writer.view());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(std::holds_alternative<NopOption>((*parsed)[0]));
  const auto& raw = std::get<RawOption>((*parsed)[1]);
  EXPECT_EQ(raw.type, 148);
  EXPECT_EQ(raw.data.size(), 2u);
}

TEST(Options, ParseRejectsMalformedRecordRoute) {
  // Pointer below 4.
  const std::uint8_t bad_pointer[] = {7, 7, 3, 0, 0, 0, 0, 0};
  EXPECT_FALSE(parse_options(bad_pointer).has_value());
  // Length not 3+4k.
  const std::uint8_t bad_length[] = {7, 6, 4, 0, 0, 0, 0, 0};
  EXPECT_FALSE(parse_options(bad_length).has_value());
  // Pointer beyond the option.
  const std::uint8_t far_pointer[] = {7, 7, 16, 0, 0, 0, 0, 0};
  EXPECT_FALSE(parse_options(far_pointer).has_value());
  // Option runs past the buffer.
  const std::uint8_t overrun[] = {7, 40, 4};
  EXPECT_FALSE(parse_options(overrun).has_value());
  // Truncated: type with no length byte.
  const std::uint8_t truncated[] = {7};
  EXPECT_FALSE(parse_options(truncated).has_value());
}

TEST(Options, EndOfListStopsParsing) {
  const std::uint8_t data[] = {1, 0, 7, 7};  // NOP, EOL, then garbage
  const auto parsed = parse_options(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(Options, OversizedListRejected) {
  std::vector<IpOption> options;
  options.emplace_back(RecordRouteOption::empty(9));  // 39 bytes
  options.emplace_back(RawOption{200, {1, 2, 3}});    // +5 > 40
  net::ByteWriter writer;
  EXPECT_FALSE(serialize_options(options, writer));
  EXPECT_EQ(writer.size(), 0u);
}

TEST(TimestampOption, FourSlotCapWithAddresses) {
  auto ts = TimestampOption::empty(4);
  EXPECT_EQ(ts.wire_length(), 36);  // 4 + 4*8
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ts.stamp(IPv4Address(10, 0, 0, static_cast<uint8_t>(i)),
                         1000u * static_cast<unsigned>(i)));
  }
  EXPECT_TRUE(ts.full());
  EXPECT_FALSE(ts.stamp(IPv4Address(10, 0, 0, 9), 5000));
  EXPECT_EQ(ts.overflow, 1);  // the miss is tallied
}

TEST(TimestampOption, SerializeParseRoundTrip) {
  auto ts = TimestampOption::empty(3);
  ASSERT_TRUE(ts.stamp(IPv4Address(192, 0, 2, 1), 12345678));
  std::vector<IpOption> options{ts};
  net::ByteWriter writer;
  ASSERT_TRUE(serialize_options(options, writer));
  const auto parsed = parse_options(writer.view());
  ASSERT_TRUE(parsed.has_value());
  const auto* back = find_timestamp(*parsed);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, ts);
}

TEST(TimestampOption, OversizedCapacityRejected) {
  auto ts = TimestampOption::empty(5);  // 4 + 5*8 = 44 > 40
  net::ByteWriter writer;
  EXPECT_FALSE(serialize_options({IpOption{ts}}, writer));
}

TEST(TimestampOption, InPlaceStampAndOverflow) {
  const auto ping = make_ping_ts(IPv4Address(1, 1, 1, 1),
                                 IPv4Address(2, 2, 2, 2), 7, 1, 64, 4);
  auto bytes = *ping.serialize();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ts_stamp(bytes, IPv4Address(10, 9, 0,
                                            static_cast<uint8_t>(i)),
                         777u + static_cast<unsigned>(i)));
    ASSERT_TRUE(Ipv4Header::parse(bytes).has_value());  // checksum intact
  }
  // Fifth stamp: no room; the overflow counter must tick instead.
  ASSERT_TRUE(ts_stamp(bytes, IPv4Address(10, 9, 0, 99), 999));
  const auto parsed = Ipv4Header::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* ts = find_timestamp(parsed->options);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->entries.size(), 4u);
  EXPECT_EQ(ts->overflow, 1);
  EXPECT_EQ(ts->entries[2].address, IPv4Address(10, 9, 0, 2));
  EXPECT_EQ(ts->entries[2].timestamp_ms, 779u);
}

// ------------------------------------------------------------ IPv4 header

TEST(Ipv4Header, RoundTripNoOptions) {
  Ipv4Header header;
  header.source = IPv4Address(1, 2, 3, 4);
  header.destination = IPv4Address(5, 6, 7, 8);
  header.ttl = 17;
  header.protocol = IpProto::kUdp;
  header.identification = 0xCAFE;

  net::ByteWriter writer;
  ASSERT_TRUE(header.serialize(writer, 100));
  EXPECT_EQ(writer.size(), kIpv4BaseHeaderBytes);

  const auto parsed = Ipv4Header::parse(writer.view());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->source, header.source);
  EXPECT_EQ(parsed->destination, header.destination);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->protocol, IpProto::kUdp);
  EXPECT_EQ(parsed->identification, 0xCAFE);
  EXPECT_EQ(parsed->total_length, 120);
}

TEST(Ipv4Header, RoundTripWithRecordRoute) {
  Ipv4Header header;
  header.source = IPv4Address(10, 0, 0, 1);
  header.destination = IPv4Address(10, 0, 0, 2);
  header.options.emplace_back(RecordRouteOption::empty(9));

  net::ByteWriter writer;
  ASSERT_TRUE(header.serialize(writer, 8));
  EXPECT_EQ(writer.size(), 60u);  // maximum IPv4 header
  EXPECT_EQ(writer.view()[0], 0x4F);  // version 4, IHL 15

  const auto parsed = Ipv4Header::parse(writer.view());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->record_route(), nullptr);
  EXPECT_EQ(parsed->record_route()->capacity, 9);
}

TEST(Ipv4Header, ParseRejectsCorruptChecksum) {
  Ipv4Header header;
  header.source = IPv4Address(1, 1, 1, 1);
  header.destination = IPv4Address(2, 2, 2, 2);
  net::ByteWriter writer;
  ASSERT_TRUE(header.serialize(writer, 0));
  std::vector<std::uint8_t> bytes{writer.view().begin(), writer.view().end()};
  bytes[8] ^= 0x01;  // flip a TTL bit without fixing the checksum
  EXPECT_FALSE(Ipv4Header::parse(bytes).has_value());
}

TEST(Ipv4Header, ParseRejectsTruncatedAndNonV4) {
  const std::uint8_t short_buf[] = {0x45, 0x00};
  EXPECT_FALSE(Ipv4Header::parse(short_buf).has_value());
  std::uint8_t v6ish[20] = {0x60};
  EXPECT_FALSE(Ipv4Header::parse(v6ish).has_value());
}

// ------------------------------------------------------------------- ICMP

TEST(Icmp, EchoRoundTrip) {
  const auto request = IcmpMessage::echo_request(0x1234, 7, 16);
  net::ByteWriter writer;
  request.serialize(writer);
  EXPECT_TRUE(net::checksum_ok(writer.view()));

  const auto parsed = IcmpMessage::parse(writer.view());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, IcmpType::kEchoRequest);
  ASSERT_NE(parsed->echo(), nullptr);
  EXPECT_EQ(parsed->echo()->identifier, 0x1234);
  EXPECT_EQ(parsed->echo()->sequence, 7);
  EXPECT_EQ(parsed->echo()->payload.size(), 16u);
}

TEST(Icmp, EchoReplyEchoesBody) {
  const auto request = IcmpMessage::echo_request(1, 2);
  const auto reply = IcmpMessage::echo_reply_for(*request.echo());
  EXPECT_EQ(reply.type, IcmpType::kEchoReply);
  EXPECT_EQ(*reply.echo(), *request.echo());
}

TEST(Icmp, ErrorQuotesHeaderAndLeadingPayload) {
  // Build an offending datagram with a full RR option.
  auto probe = make_ping(IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2), 9,
                         9, 64, 9);
  const auto probe_bytes = probe.serialize();
  ASSERT_TRUE(probe_bytes.has_value());

  const auto error = IcmpMessage::error(IcmpType::kTimeExceeded, 0,
                                        *probe_bytes, 8);
  const auto* body = error.error_body();
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->quoted_datagram.size(), 60u + 8u);  // header + 8 bytes

  // The quoted header must itself parse — including the RR option.
  const auto quoted = Ipv4Header::parse(body->quoted_datagram);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_NE(quoted->record_route(), nullptr);
}

TEST(Icmp, ParseRejectsCorruption) {
  const auto msg = IcmpMessage::echo_request(5, 6);
  net::ByteWriter writer;
  msg.serialize(writer);
  std::vector<std::uint8_t> bytes{writer.view().begin(), writer.view().end()};
  bytes[4] ^= 0xFF;
  EXPECT_FALSE(IcmpMessage::parse(bytes).has_value());
  EXPECT_FALSE(IcmpMessage::parse({bytes.data(), 4}).has_value());
}

// -------------------------------------------------------------------- UDP

TEST(Udp, RoundTrip) {
  UdpDatagram udp;
  udp.source_port = 54321;
  udp.destination_port = kUdpProbePortBase;
  udp.payload = {1, 2, 3};

  net::ByteWriter writer;
  udp.serialize(writer);
  EXPECT_EQ(writer.size(), 11u);
  const auto parsed = UdpDatagram::parse(writer.view());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, udp);
}

TEST(Udp, ParseRejectsBadLength) {
  const std::uint8_t bad[] = {0, 1, 0, 2, 0, 3, 0, 0};  // length 3 < 8
  EXPECT_FALSE(UdpDatagram::parse(bad).has_value());
}

// --------------------------------------------------------------- datagram

TEST(Datagram, PingRoundTrip) {
  const auto ping = make_ping(IPv4Address(9, 9, 9, 9),
                              IPv4Address(10, 10, 10, 10), 42, 1, 64, 9);
  const auto bytes = ping.serialize();
  ASSERT_TRUE(bytes.has_value());

  const auto parsed = Datagram::parse(*bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->icmp(), nullptr);
  EXPECT_EQ(parsed->icmp()->echo()->identifier, 42);
  ASSERT_NE(parsed->header.record_route(), nullptr);
  EXPECT_EQ(parsed->header.record_route()->recorded.size(), 0u);
}

TEST(Datagram, UdpProbeRoundTrip) {
  const auto probe = make_udp_probe(IPv4Address(9, 9, 9, 9),
                                    IPv4Address(10, 10, 10, 10), 40000,
                                    33500, 64, 9);
  const auto bytes = probe.serialize();
  ASSERT_TRUE(bytes.has_value());
  const auto parsed = Datagram::parse(*bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->udp(), nullptr);
  EXPECT_EQ(parsed->udp()->destination_port, 33500);
  EXPECT_NE(parsed->header.record_route(), nullptr);
}

// ----------------------------------------------------------------- mutate

std::vector<std::uint8_t> ping_bytes(int rr_slots, std::uint8_t ttl = 64) {
  const auto ping = make_ping(IPv4Address(1, 0, 0, 1),
                              IPv4Address(2, 0, 0, 2), 77, 3, ttl, rr_slots);
  return *ping.serialize();
}

TEST(Mutate, PeekFields) {
  const auto bytes = ping_bytes(9, 33);
  EXPECT_EQ(*peek_ttl(bytes), 33);
  EXPECT_EQ(*peek_protocol(bytes), 1);  // ICMP
  EXPECT_EQ(*peek_source(bytes), IPv4Address(1, 0, 0, 1));
  EXPECT_EQ(*peek_destination(bytes), IPv4Address(2, 0, 0, 2));
  EXPECT_TRUE(has_ip_options(bytes));
  EXPECT_FALSE(has_ip_options(ping_bytes(0)));
}

TEST(Mutate, DecrementTtlKeepsChecksumValid) {
  auto bytes = ping_bytes(9, 5);
  for (int expected = 4; expected >= 0; --expected) {
    const auto ttl = decrement_ttl(bytes);
    ASSERT_TRUE(ttl.has_value());
    EXPECT_EQ(*ttl, expected);
    // Incremental update must agree with a full recompute at every step.
    EXPECT_TRUE(Ipv4Header::parse(bytes).has_value());
  }
  EXPECT_FALSE(decrement_ttl(bytes).has_value());  // already zero
}

TEST(Mutate, RrStampWritesSlotAndAdvancesPointer) {
  auto bytes = ping_bytes(9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0,
                                            static_cast<uint8_t>(i + 1))));
  }
  EXPECT_FALSE(rr_stamp(bytes, IPv4Address(10, 0, 0, 99)));  // full

  const auto parsed = Datagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* rr = parsed->header.record_route();
  ASSERT_NE(rr, nullptr);
  ASSERT_EQ(rr->recorded.size(), 9u);
  EXPECT_EQ(rr->recorded.front(), IPv4Address(10, 0, 0, 1));
  EXPECT_EQ(rr->recorded.back(), IPv4Address(10, 0, 0, 9));
}

TEST(Mutate, RrStampWithoutOptionIsNoop) {
  auto bytes = ping_bytes(0);
  const auto before = bytes;
  EXPECT_FALSE(rr_stamp(bytes, IPv4Address(10, 0, 0, 1)));
  EXPECT_EQ(bytes, before);
}

TEST(Mutate, FindRrReportsSlots) {
  auto bytes = ping_bytes(9);
  auto loc = find_rr(bytes);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->capacity(), 9);
  EXPECT_EQ(loc->recorded(), 0);
  EXPECT_FALSE(loc->full());
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(3, 3, 3, 3)));
  loc = find_rr(bytes);
  EXPECT_EQ(loc->recorded(), 1);
  EXPECT_EQ(loc->free_slots(), 8);
}

TEST(Mutate, GarbageBuffersAreRejectedSafely) {
  std::vector<std::uint8_t> garbage(64, 0xAA);
  EXPECT_FALSE(peek_ttl(garbage).has_value());
  EXPECT_FALSE(find_rr(garbage).has_value());
  std::vector<std::uint8_t> tiny(4, 0x45);
  EXPECT_FALSE(decrement_ttl(tiny).has_value());
}

// The property the whole simulator relies on: a packet mutated hop by hop
// (decrement + stamp) stays checksum-valid and parseable at every step.
TEST(Mutate, HopByHopPipelineKeepsPacketValid) {
  util::Rng rng{99};
  for (int trial = 0; trial < 40; ++trial) {
    auto bytes = ping_bytes(9, static_cast<std::uint8_t>(
                                   rng.next_in(10, 64)));
    for (int hop = 0; hop < 12; ++hop) {
      const auto ttl = decrement_ttl(bytes);
      ASSERT_TRUE(ttl.has_value());
      if (*ttl == 0) break;
      rr_stamp(bytes, IPv4Address{static_cast<std::uint32_t>(rng())});
      const auto parsed = Datagram::parse(bytes);
      ASSERT_TRUE(parsed.has_value());
    }
  }
}

// ------------------------------------------------- fault-layer mutators

std::size_t timestamp_option_offset(std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 20; i + 1 < bytes.size(); ++i) {
    if (bytes[i] == kOptTimestamp) return i;
  }
  ADD_FAILURE() << "no timestamp option in buffer";
  return 0;
}

// Regression: ts_stamp used to trust the option's pointer field. A pointer
// below 5 or one not aligned to the 8-byte (address, timestamp) entry grid
// would land the write on the option's own type/length/pointer bytes.
TEST(Mutate, TsStampRejectsCorruptPointer) {
  const auto ping = make_ping_ts(IPv4Address(1, 1, 1, 1),
                                 IPv4Address(2, 2, 2, 2), 7, 1, 64, 4);
  for (const std::uint8_t bad_pointer : {0, 3, 4, 6, 10}) {
    auto bytes = *ping.serialize();
    const std::size_t opt = timestamp_option_offset(bytes);
    bytes[opt + 2] = bad_pointer;  // 5 and 13 are the only legal small ones
    const auto before = bytes;
    EXPECT_FALSE(ts_stamp(bytes, IPv4Address(9, 9, 9, 9), 123))
        << "pointer " << int{bad_pointer};
    EXPECT_EQ(bytes, before) << "buffer must be untouched on rejection";
  }
}

// Regression (found by tests/fuzz_packet_main.cpp under ASan): a total-
// length field smaller than the IHL-derived header length underflowed the
// ICMP length computation and read past the buffer while fixing the
// checksum.
TEST(Mutate, MangleIcmpQuoteRejectsLyingTotalLength) {
  auto bytes = ping_bytes(9);
  bytes[2] = 0;
  bytes[3] = 24;  // total length 24 < 60-byte header
  rewrite_header_checksum(bytes);
  const auto before = bytes;
  EXPECT_FALSE(mangle_icmp_quote(bytes));
  EXPECT_EQ(bytes, before);
}

TEST(Mutate, FaultMutatorsRejectGarbageSafely) {
  std::vector<std::uint8_t> garbage(64, 0xAA);
  std::vector<std::uint8_t> tiny(4, 0x45);
  const auto garbage_before = garbage;
  EXPECT_FALSE(rr_truncate(garbage));
  EXPECT_FALSE(rr_garble(garbage, IPv4Address(240, 0, 0, 1)));
  EXPECT_FALSE(strip_options(garbage));
  EXPECT_FALSE(mangle_icmp_quote(garbage));
  EXPECT_EQ(garbage, garbage_before);
  EXPECT_FALSE(rr_truncate(tiny));
  EXPECT_FALSE(corrupt_header_checksum(tiny));
  // A ping without options has nothing to truncate, garble, or strip.
  auto plain = ping_bytes(0);
  EXPECT_FALSE(rr_truncate(plain));
  EXPECT_FALSE(rr_garble(plain, IPv4Address(240, 0, 0, 1)));
  EXPECT_FALSE(strip_options(plain));
}

// The monotonicity contract of rr_truncate: the option must come back
// *exhausted*, never with freed slots a later hop could stamp into.
TEST(Mutate, RrTruncateExhaustsOptionWithoutFreeingSlots) {
  auto bytes = ping_bytes(9);
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0, 1)));
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0, 2)));
  ASSERT_TRUE(rr_truncate(bytes));
  const auto loc = find_rr(bytes);
  ASSERT_TRUE(loc.has_value());
  EXPECT_TRUE(loc->full());
  EXPECT_EQ(loc->free_slots(), 0);
  EXPECT_FALSE(rr_stamp(bytes, IPv4Address(10, 0, 0, 3)));
  // Still a valid datagram; the record is all zeros (provably bogus).
  const auto parsed = Datagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* rr = parsed->header.record_route();
  ASSERT_NE(rr, nullptr);
  for (const auto& addr : rr->recorded) {
    EXPECT_EQ(addr, IPv4Address{});
  }
}

TEST(Mutate, RrGarbleOverwritesLatestStamp) {
  auto bytes = ping_bytes(9);
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0, 1)));
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0, 2)));
  const IPv4Address bogus(240, 1, 2, 3);
  ASSERT_TRUE(rr_garble(bytes, bogus));
  const auto parsed = Datagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* rr = parsed->header.record_route();
  ASSERT_NE(rr, nullptr);
  ASSERT_EQ(rr->recorded.size(), 2u);
  EXPECT_EQ(rr->recorded[0], IPv4Address(10, 0, 0, 1));  // untouched
  EXPECT_EQ(rr->recorded[1], bogus);
  // An empty record has no stamp to garble.
  auto fresh = ping_bytes(9);
  EXPECT_FALSE(rr_garble(fresh, bogus));
}

TEST(Mutate, StripOptionsCollapsesHeaderAndStaysValid) {
  auto bytes = ping_bytes(9, 17);
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0, 1)));
  const std::size_t before_size = bytes.size();
  ASSERT_TRUE(strip_options(bytes));
  EXPECT_EQ(bytes.size(), before_size - 40);  // full RR option area removed
  EXPECT_FALSE(has_ip_options(bytes));
  EXPECT_EQ(*peek_ttl(bytes), 17);
  const auto parsed = Datagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.record_route(), nullptr);
  ASSERT_NE(parsed->icmp(), nullptr);  // echo payload survived the move
}

// The sim's form of option stripping: contents destroyed, geometry kept,
// so routers/hosts make baseline-identical slow-path and drop decisions.
TEST(Mutate, BlankOptionsKeepsGeometryButRemovesRecordRoute) {
  auto bytes = ping_bytes(9, 21);
  ASSERT_TRUE(rr_stamp(bytes, IPv4Address(10, 0, 0, 1)));
  const std::size_t before_size = bytes.size();
  ASSERT_TRUE(blank_options(bytes));
  EXPECT_EQ(bytes.size(), before_size);
  EXPECT_TRUE(has_ip_options(bytes));  // slow path still sees it
  EXPECT_FALSE(find_rr(bytes).has_value());
  EXPECT_FALSE(rr_stamp(bytes, IPv4Address(10, 0, 0, 2)));
  const auto parsed = Datagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->header.options.empty());  // NOPs, not nothing
  EXPECT_EQ(parsed->header.record_route(), nullptr);
  // Nothing to blank without options.
  auto plain = ping_bytes(0);
  EXPECT_FALSE(blank_options(plain));
}

TEST(Mutate, CorruptChecksumMakesDatagramUnparseable) {
  auto bytes = ping_bytes(9);
  ASSERT_TRUE(Datagram::parse(bytes).has_value());
  ASSERT_TRUE(corrupt_header_checksum(bytes));
  EXPECT_FALSE(Ipv4Header::parse(bytes).has_value());
  // A second corruption restores the original sum (XOR is an involution).
  ASSERT_TRUE(corrupt_header_checksum(bytes));
  EXPECT_TRUE(Datagram::parse(bytes).has_value());
}

TEST(Mutate, MangleIcmpQuotePerturbsQuoteButKeepsMessageValid) {
  // Build a real router error quoting a stamped probe, as the sim does.
  auto probe = make_ping(IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2),
                         9, 9, 64, 9);
  auto probe_bytes = *probe.serialize();
  ASSERT_TRUE(rr_stamp(probe_bytes, IPv4Address(10, 0, 0, 1)));

  Datagram error;
  error.header.source = IPv4Address(10, 0, 0, 1);
  error.header.destination = IPv4Address(1, 1, 1, 1);
  error.header.ttl = 64;
  error.header.protocol = IpProto::kIcmp;
  error.payload =
      IcmpMessage::error(IcmpType::kTimeExceeded, 0, probe_bytes, 8);
  auto bytes = *error.serialize();

  const auto original = Datagram::parse(bytes);
  ASSERT_TRUE(original.has_value());
  ASSERT_TRUE(mangle_icmp_quote(bytes));

  // Still parses (IP and ICMP checksums repaired) ...
  const auto mangled = Datagram::parse(bytes);
  ASSERT_TRUE(mangled.has_value());
  const auto* body = mangled->icmp()->error_body();
  ASSERT_NE(body, nullptr);
  // ... but the quoted source no longer matches the original probe.
  const auto* original_body = original->icmp()->error_body();
  EXPECT_NE(body->quoted_datagram, original_body->quoted_datagram);
  EXPECT_NE(body->quoted_datagram[12], original_body->quoted_datagram[12]);
}

}  // namespace
}  // namespace rr::pkt
