// Parameterized routing properties across seeds and epochs: universal
// reachability, valley-freedom, loop-freedom, oracle/engine agreement,
// and stitching invariants on worlds the fixture tests never saw.
#include <gtest/gtest.h>

#include <unordered_set>

#include "routing/oracle.h"
#include "routing/stitcher.h"
#include "topology/generator.h"

namespace rr::route {
namespace {

struct WorldParam {
  std::uint64_t seed;
  topo::Epoch epoch;
};

class RoutedWorld : public ::testing::TestWithParam<WorldParam> {
 protected:
  void SetUp() override {
    topo_ = topo::generate_test_topology(GetParam().seed);
    engine_ = std::make_unique<BgpEngine>(topo_, GetParam().epoch);
  }
  std::shared_ptr<const topo::Topology> topo_;
  std::unique_ptr<BgpEngine> engine_;
};

TEST_P(RoutedWorld, AllPairsReachable) {
  const std::size_t n = topo_->ases().size();
  for (topo::AsId dst = 0; dst < n; dst += 13) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (topo::AsId src = 0; src < n; ++src) {
      ASSERT_TRUE(tree.reachable_from(src))
          << "src " << src << " dst " << dst;
    }
  }
}

TEST_P(RoutedWorld, PathsAreSimpleAndEndpointCorrect) {
  const std::size_t n = topo_->ases().size();
  for (topo::AsId dst = 3; dst < n; dst += 17) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (topo::AsId src = 0; src < n; src += 7) {
      const auto path = tree.as_path_from(src);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst);
      std::unordered_set<topo::AsId> unique(path.begin(), path.end());
      EXPECT_EQ(unique.size(), path.size());
      EXPECT_LE(path.size(), 14u);  // hierarchy depth bounds path length
    }
  }
}

TEST_P(RoutedWorld, CustomerRoutePreferredWheneverOneExists) {
  const RouteTree tree = engine_->compute_tree(1);
  for (topo::AsId src = 0; src < topo_->ases().size(); ++src) {
    const auto& entry = tree.entry(src);
    if (entry.route_class == RouteClass::kCustomer ||
        entry.route_class == RouteClass::kSelf) {
      continue;
    }
    for (topo::AsId customer : engine_->customers_of(src)) {
      const auto cls = tree.entry(customer).route_class;
      EXPECT_NE(cls, RouteClass::kCustomer);
      EXPECT_NE(cls, RouteClass::kSelf);
    }
  }
}

TEST_P(RoutedWorld, OracleAgreesWithEngineOnEveryQueryKind) {
  std::vector<topo::AsId> sources{1, 4, 8, 15};
  RoutingOracle oracle{topo_, GetParam().epoch, sources};
  for (topo::AsId dst = 0; dst < topo_->ases().size(); dst += 9) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (topo::AsId src : sources) {  // precomputed-forward queries
      EXPECT_EQ(oracle.as_path(src, dst), tree.as_path_from(src));
    }
  }
  const RouteTree to_source = engine_->compute_tree(4);
  for (topo::AsId src = 0; src < topo_->ases().size(); src += 11) {
    // pinned-reverse queries
    EXPECT_EQ(oracle.as_path(src, 4), to_source.as_path_from(src));
  }
}

TEST_P(RoutedWorld, StitchedPathsFollowTheAsPath) {
  std::vector<topo::AsId> sources;
  for (const auto& vp : topo_->vantage_points()) {
    sources.push_back(topo_->host_at(vp.host).as_id);
  }
  RoutingOracle oracle{topo_, GetParam().epoch, sources};
  PathStitcher stitcher{topo_, oracle};

  const auto vps = topo_->vantage_points_in(GetParam().epoch);
  ASSERT_FALSE(vps.empty());
  const topo::HostId src = vps.front()->host;
  for (std::size_t i = 0; i < topo_->destinations().size(); i += 41) {
    const topo::HostId dst = topo_->destinations()[i];
    std::vector<PathHop> hops;
    ASSERT_TRUE(stitcher.host_path(src, dst, hops));

    // AS sequence of the router path == the BGP AS path (contiguous).
    std::vector<topo::AsId> as_seq;
    for (const auto& hop : hops) {
      const topo::AsId as = topo_->router_at(hop.router).as_id;
      if (as_seq.empty() || as_seq.back() != as) as_seq.push_back(as);
    }
    const auto as_path = oracle.as_path(topo_->host_at(src).as_id,
                                        topo_->host_at(dst).as_id);
    EXPECT_EQ(as_seq, as_path);
  }
}

TEST_P(RoutedWorld, StitchedHopAddressesBelongToTheirRouters) {
  std::vector<topo::AsId> sources;
  for (const auto& vp : topo_->vantage_points()) {
    sources.push_back(topo_->host_at(vp.host).as_id);
  }
  RoutingOracle oracle{topo_, GetParam().epoch, sources};
  PathStitcher stitcher{topo_, oracle};
  const auto vps = topo_->vantage_points_in(GetParam().epoch);
  ASSERT_FALSE(vps.empty());
  for (const auto* vp : vps) {
    for (std::size_t i = 0; i < topo_->destinations().size(); i += 97) {
      std::vector<PathHop> hops;
      if (!stitcher.host_path(vp->host, topo_->destinations()[i], hops)) {
        continue;
      }
      for (const auto& hop : hops) {
        const auto ingress_owner = topo_->owner_of(hop.ingress);
        const auto egress_owner = topo_->owner_of(hop.egress);
        ASSERT_TRUE(ingress_owner.has_value());
        ASSERT_TRUE(egress_owner.has_value());
        EXPECT_EQ(ingress_owner->id, hop.router);
        EXPECT_EQ(egress_owner->id, hop.router);
      }
    }
  }
}

TEST_P(RoutedWorld, EpochsOnlyRemoveEdgesNeverAdd) {
  // Every 2011 adjacency is also a 2016 adjacency.
  BgpEngine old_engine{topo_, topo::Epoch::k2011};
  BgpEngine new_engine{topo_, topo::Epoch::k2016};
  for (topo::AsId as = 0; as < topo_->ases().size(); ++as) {
    for (topo::AsId peer : old_engine.peers_of(as)) {
      const auto& peers2016 = new_engine.peers_of(as);
      EXPECT_NE(std::find(peers2016.begin(), peers2016.end(), peer),
                peers2016.end());
    }
    EXPECT_LE(old_engine.providers_of(as).size(),
              new_engine.providers_of(as).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEpochs, RoutedWorld,
    ::testing::Values(WorldParam{11, topo::Epoch::k2016},
                      WorldParam{12, topo::Epoch::k2016},
                      WorldParam{13, topo::Epoch::k2016},
                      WorldParam{11, topo::Epoch::k2011},
                      WorldParam{14, topo::Epoch::k2011}));

}  // namespace
}  // namespace rr::route
