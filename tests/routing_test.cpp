// BGP policy routing and router-level path stitching.
#include <gtest/gtest.h>

#include <unordered_set>

#include "routing/bgp.h"
#include "routing/oracle.h"
#include "routing/stitcher.h"
#include "topology/generator.h"

namespace rr::route {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = topo::generate_test_topology(21);
    engine_ = new BgpEngine{topo_, topo::Epoch::k2016};
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    topo_.reset();
  }

  static std::shared_ptr<const topo::Topology> topo_;
  static BgpEngine* engine_;
};

std::shared_ptr<const topo::Topology> RoutingTest::topo_;
BgpEngine* RoutingTest::engine_ = nullptr;

bool is_valley_free(const BgpEngine& engine, const std::vector<AsId>& path) {
  // Classify each step, then check the up* [flat]? down* shape.
  enum Step { kUp, kFlat, kDown };
  std::vector<Step> steps;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const AsId from = path[i];
    const AsId to = path[i + 1];
    const auto& providers = engine.providers_of(from);
    const auto& customers = engine.customers_of(from);
    const auto& peers = engine.peers_of(from);
    if (std::find(providers.begin(), providers.end(), to) != providers.end()) {
      steps.push_back(kUp);
    } else if (std::find(customers.begin(), customers.end(), to) !=
               customers.end()) {
      steps.push_back(kDown);
    } else if (std::find(peers.begin(), peers.end(), to) != peers.end()) {
      steps.push_back(kFlat);
    } else {
      return false;  // non-adjacent step
    }
  }
  int phase = 0;  // 0 = climbing, 1 = after flat, 2 = descending
  for (Step s : steps) {
    switch (s) {
      case kUp:
        if (phase != 0) return false;
        break;
      case kFlat:
        if (phase != 0) return false;
        phase = 1;
        break;
      case kDown:
        phase = 2;
        break;
    }
  }
  return true;
}

TEST_F(RoutingTest, EveryAsReachesEveryOtherAs) {
  // The generated hierarchy guarantees universal reachability via
  // provider chains and the tier-1 clique.
  const std::size_t n = topo_->ases().size();
  for (AsId dst = 0; dst < n; dst += 7) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (AsId src = 0; src < n; ++src) {
      EXPECT_TRUE(tree.reachable_from(src))
          << "AS " << src << " cannot reach AS " << dst;
    }
  }
}

TEST_F(RoutingTest, PathsAreValleyFree) {
  const std::size_t n = topo_->ases().size();
  for (AsId dst = 0; dst < n; dst += 11) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (AsId src = 0; src < n; src += 5) {
      const auto path = tree.as_path_from(src);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst);
      EXPECT_TRUE(is_valley_free(*engine_, path))
          << "valley in path from " << src << " to " << dst;
      // No loops.
      std::unordered_set<AsId> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size());
    }
  }
}

TEST_F(RoutingTest, PrefersCustomerOverPeerOverProvider) {
  const std::size_t n = topo_->ases().size();
  int checked = 0;
  for (AsId dst = 0; dst < n && checked < 500; dst += 3) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (AsId src = 0; src < n && checked < 500; src += 3) {
      if (src == dst) continue;
      const auto& entry = tree.entry(src);
      if (entry.route_class != RouteClass::kPeer &&
          entry.route_class != RouteClass::kProvider) {
        continue;
      }
      // If the chosen route is peer/provider there must be no customer
      // route: no customer of src may have any route that reaches dst
      // going strictly down. Verify against the tree's customer BFS
      // indirectly: a customer-learned route would have been preferred.
      for (AsId customer : engine_->customers_of(src)) {
        const auto& sub = tree.entry(customer);
        EXPECT_FALSE(sub.route_class == RouteClass::kCustomer ||
                     sub.route_class == RouteClass::kSelf)
            << "AS " << src << " should have taken the customer route via "
            << customer;
      }
      ++checked;
    }
  }
}

TEST_F(RoutingTest, RouteLengthMatchesPathLength) {
  const RouteTree tree = engine_->compute_tree(3);
  for (AsId src = 0; src < topo_->ases().size(); src += 13) {
    const auto path = tree.as_path_from(src);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size(), tree.entry(src).length + 1u);
  }
}

TEST_F(RoutingTest, Epoch2011HasFewerPeerEdges) {
  BgpEngine old_engine{topo_, topo::Epoch::k2011};
  std::size_t peers_2011 = 0, peers_2016 = 0;
  for (AsId as = 0; as < topo_->ases().size(); ++as) {
    peers_2011 += old_engine.peers_of(as).size();
    peers_2016 += engine_->peers_of(as).size();
  }
  EXPECT_LT(peers_2011, peers_2016);
}

TEST_F(RoutingTest, OracleMatchesEngine) {
  std::vector<AsId> sources{0, 5, 9};
  RoutingOracle oracle{topo_, topo::Epoch::k2016, sources};
  for (AsId dst = 0; dst < topo_->ases().size(); dst += 17) {
    const RouteTree tree = engine_->compute_tree(dst);
    for (AsId src : sources) {
      EXPECT_EQ(oracle.as_path(src, dst), tree.as_path_from(src));
    }
  }
  // Reverse direction (dst is a source) uses pinned trees.
  const RouteTree to5 = engine_->compute_tree(5);
  for (AsId src = 0; src < topo_->ases().size(); src += 23) {
    EXPECT_EQ(oracle.as_path(src, 5), to5.as_path_from(src));
  }
  // Fallback path (neither endpoint a source).
  const RouteTree to7 = engine_->compute_tree(7);
  EXPECT_EQ(oracle.as_path(11, 7), to7.as_path_from(11));
  EXPECT_EQ(oracle.as_path(3, 3), std::vector<AsId>{3});
}

class StitcherTest : public RoutingTest {
 protected:
  void SetUp() override {
    std::vector<AsId> sources;
    for (const auto& vp : topo_->vantage_points()) {
      sources.push_back(topo_->host_at(vp.host).as_id);
    }
    oracle_ = std::make_unique<RoutingOracle>(topo_, topo::Epoch::k2016,
                                              sources);
    stitcher_ = std::make_unique<PathStitcher>(topo_, *oracle_);
  }
  std::unique_ptr<RoutingOracle> oracle_;
  std::unique_ptr<PathStitcher> stitcher_;
};

TEST_F(StitcherTest, ForwardPathIsContiguousAndDuplicateFree) {
  const auto vps = topo_->vantage_points();
  ASSERT_FALSE(vps.empty());
  const topo::HostId src = vps.front().host;
  for (std::size_t i = 0; i < topo_->destinations().size(); i += 29) {
    const topo::HostId dst = topo_->destinations()[i];
    std::vector<PathHop> hops;
    ASSERT_TRUE(stitcher_->host_path(src, dst, hops));
    ASSERT_FALSE(hops.empty());
    // First hop is in the source AS, last in the destination AS.
    EXPECT_EQ(topo_->router_at(hops.front().router).as_id,
              topo_->host_at(src).as_id);
    EXPECT_EQ(topo_->router_at(hops.back().router).as_id,
              topo_->host_at(dst).as_id);
    for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
      EXPECT_NE(hops[h].router, hops[h + 1].router);
    }
    // Each hop's egress address belongs to the hop's router.
    for (const auto& hop : hops) {
      const auto owner = topo_->owner_of(hop.egress);
      ASSERT_TRUE(owner.has_value());
      EXPECT_EQ(owner->id, hop.router);
    }
  }
}

TEST_F(StitcherTest, CrossAsHopsUseLinkAddresses) {
  const topo::HostId src = topo_->vantage_points().front().host;
  const topo::HostId dst = topo_->destinations()[3];
  std::vector<PathHop> hops;
  ASSERT_TRUE(stitcher_->host_path(src, dst, hops));
  for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
    const auto as_a = topo_->router_at(hops[h].router).as_id;
    const auto as_b = topo_->router_at(hops[h + 1].router).as_id;
    if (as_a == as_b) continue;
    const auto link_id = topo_->link_between(as_a, as_b);
    ASSERT_TRUE(link_id.has_value());
    const auto& link = topo_->link_at(*link_id);
    EXPECT_EQ(hops[h].egress, link.a == as_a ? link.addr_a : link.addr_b);
    EXPECT_EQ(hops[h + 1].ingress,
              link.a == as_b ? link.addr_a : link.addr_b);
  }
}

TEST_F(StitcherTest, ForwardAndReversePathsMayDiffer) {
  // Policy routing is asymmetric; at least some pairs must demonstrate it.
  const auto vps = topo_->vantage_points();
  int asymmetric = 0, total = 0;
  for (std::size_t v = 0; v < vps.size(); ++v) {
    const topo::HostId src = vps[v].host;
    for (std::size_t i = 0; i < topo_->destinations().size(); i += 61) {
      const topo::HostId dst = topo_->destinations()[i];
      std::vector<PathHop> fwd, rev;
      if (!stitcher_->host_path(src, dst, fwd)) continue;
      if (!stitcher_->host_path(dst, src, rev)) continue;
      ++total;
      std::vector<topo::RouterId> fwd_routers, rev_routers;
      for (const auto& hop : fwd) fwd_routers.push_back(hop.router);
      for (const auto& hop : rev) rev_routers.push_back(hop.router);
      std::reverse(rev_routers.begin(), rev_routers.end());
      if (fwd_routers != rev_routers) ++asymmetric;
    }
  }
  EXPECT_GT(total, 10);
  EXPECT_GT(asymmetric, 0);
}

TEST_F(StitcherTest, RouterPathStartsAfterOrigin) {
  // Errors originate mid-path: the emitting router is excluded.
  const topo::HostId src = topo_->vantage_points().front().host;
  const topo::HostId dst = topo_->destinations()[5];
  std::vector<PathHop> fwd;
  ASSERT_TRUE(stitcher_->host_path(src, dst, fwd));
  ASSERT_GT(fwd.size(), 2u);
  const topo::RouterId mid = fwd[fwd.size() / 2].router;
  std::vector<PathHop> back;
  ASSERT_TRUE(stitcher_->router_path(mid, src, back));
  ASSERT_FALSE(back.empty());
  EXPECT_NE(back.front().router, mid);
  EXPECT_EQ(topo_->router_at(back.back().router).as_id,
            topo_->host_at(src).as_id);
}

TEST_F(StitcherTest, HostToRouterPathEndsAtTarget) {
  const topo::HostId src = topo_->vantage_points().front().host;
  const topo::RouterId target = topo_->as_at(5).core.front();
  std::vector<PathHop> hops;
  ASSERT_TRUE(stitcher_->host_to_router_path(src, target, hops));
  ASSERT_FALSE(hops.empty());
  EXPECT_EQ(hops.back().router, target);
}

TEST_F(StitcherTest, DeterministicStitching) {
  const topo::HostId src = topo_->vantage_points().front().host;
  const topo::HostId dst = topo_->destinations()[7];
  std::vector<PathHop> a, b;
  ASSERT_TRUE(stitcher_->host_path(src, dst, a));
  ASSERT_TRUE(stitcher_->host_path(src, dst, b));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].router, b[i].router);
    EXPECT_EQ(a[i].egress, b[i].egress);
    EXPECT_EQ(a[i].ingress, b[i].ingress);
  }
}

}  // namespace
}  // namespace rr::route
