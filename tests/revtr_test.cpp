// Reverse Traceroute: spoofed-probe mechanics and end-to-end reverse-path
// measurement, validated against the simulator's own reverse-path ground
// truth (which the measurement never sees).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "packet/datagram.h"
#include "revtr/reverse_traceroute.h"

namespace rr::revtr {
namespace {

class RevTrTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 555;
    // Keep the mechanism tests deterministic: no loss, no filters.
    config.behavior_params.base_loss = 0.0;
    config.behavior_params.options_extra_loss = 0.0;
    config.behavior_params.as_filters_edge = {0, 0, 0, 0};
    config.behavior_params.as_filters_transit = 0.0;
    config.behavior_params.host_drops_rr = {0, 0, 0, 0};
    config.behavior_params.host_strips_rr = {0, 0, 0, 0};
    config.behavior_params.host_ping_responsive = {1, 1, 1, 1};
    config.behavior_params.as_dark = {0, 0, 0, 0};
    config.behavior_params.host_no_self_stamp = 0.0;
    config.behavior_params.host_stamps_alias = 0.0;
    config.behavior_params.as_never_stamps = 0.0;
    config.behavior_params.as_sometimes_stamps = 0.0;
    config.behavior_params.router_hidden = 0.0;
    config.behavior_params.router_anonymous = 0.0;
    config.behavior_params.router_rate_limited = 0.0;
    config.behavior_params.strict_limited_vps = 0;
    testbed_ = new measure::Testbed{config};
    campaign_ = new measure::Campaign{measure::Campaign::run(*testbed_)};
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete testbed_;
  }

  static measure::Testbed* testbed_;
  static measure::Campaign* campaign_;
};

measure::Testbed* RevTrTest::testbed_ = nullptr;
measure::Campaign* RevTrTest::campaign_ = nullptr;

TEST_F(RevTrTest, SpoofedProbeIsDeliveredToTheNamedSource) {
  // A probe injected at VP A but naming VP B's address gets its reply
  // delivered to B, not A.
  const auto vps = testbed_->vps();
  ASSERT_GE(vps.size(), 2u);
  const topo::HostId injector = vps[0]->host;
  const topo::HostId named = vps[1]->host;
  const auto& topology = testbed_->topology();

  const auto target = topology.host_at(topology.destinations()[0]).address;
  const auto probe = pkt::make_ping(topology.host_at(named).address, target,
                                    0x9999, 1, 64, 9);
  const auto delivery =
      testbed_->network().send(injector, *probe.serialize(), 0.0);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->receiver, named);
  const auto reply = pkt::Datagram::parse(delivery->bytes);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->header.destination, topology.host_at(named).address);
}

TEST_F(RevTrTest, SpoofingAnUnownedAddressGetsNothing) {
  const topo::HostId injector = testbed_->vps()[0]->host;
  const auto& topology = testbed_->topology();
  const auto target = topology.host_at(topology.destinations()[0]).address;
  const auto probe = pkt::make_ping(net::IPv4Address(203, 0, 113, 7), target,
                                    1, 1, 64, 9);
  EXPECT_FALSE(
      testbed_->network().send(injector, *probe.serialize(), 0.0)
          .has_value());
}

TEST_F(RevTrTest, MeasuresReversePathsForReachableDestinations) {
  ReverseTraceroute revtr{*testbed_, campaign_};
  const auto& topology = testbed_->topology();
  const topo::HostId source = testbed_->vps().front()->host;

  int measured = 0, with_rr_hops = 0;
  for (std::size_t d = 0;
       d < campaign_->num_destinations() && measured < 20; d += 7) {
    if (!campaign_->rr_responsive(d)) continue;
    const auto target =
        topology.host_at(campaign_->destinations()[d]).address;
    const auto path = revtr.measure(target, source);
    if (!path.complete) continue;
    ++measured;
    if (path.measured_hops() > 0) ++with_rr_hops;

    // Every RR-derived hop must be a real router interface on a device
    // lying on some path; at minimum it must be an assigned address.
    for (const auto& hop : path.hops) {
      EXPECT_TRUE(topology.owner_of(hop.address).has_value())
          << hop.address.to_string();
    }
    // No duplicate hop addresses.
    std::unordered_set<std::uint32_t> seen;
    for (const auto& hop : path.hops) {
      EXPECT_TRUE(seen.insert(hop.address.value()).second);
    }
  }
  EXPECT_GE(measured, 10);
  EXPECT_GT(with_rr_hops, 0);
}

TEST_F(RevTrTest, ReverseHopsLieOnTheTrueReversePath) {
  // Ground-truth check: RR-derived reverse hops must be routers whose
  // egress addresses appear on the stitched destination->source path.
  ReverseTraceroute revtr{*testbed_, campaign_};
  const auto& topology = testbed_->topology();
  const topo::HostId source = testbed_->vps().front()->host;

  int verified_paths = 0;
  for (std::size_t d = 0;
       d < campaign_->num_destinations() && verified_paths < 8; d += 3) {
    if (!campaign_->rr_reachable(d)) continue;
    const topo::HostId dest_host = campaign_->destinations()[d];
    const auto target = topology.host_at(dest_host).address;
    const auto path = revtr.measure(target, source);
    if (path.measured_hops() == 0) continue;

    // True reverse path (router ids) from the simulator's stitcher.
    std::vector<route::PathHop> truth;
    ASSERT_TRUE(testbed_->network().stitcher().host_path(dest_host, source,
                                                         truth));
    std::unordered_set<std::uint32_t> truth_routers;
    for (const auto& hop : truth) truth_routers.insert(hop.router);

    for (const auto& hop : path.hops) {
      if (hop.source != HopSource::kSpoofedRr) continue;
      const auto owner = topology.owner_of(hop.address);
      ASSERT_TRUE(owner.has_value());
      ASSERT_EQ(owner->kind, topo::AddressOwner::Kind::kRouter);
      EXPECT_TRUE(truth_routers.contains(owner->id))
          << "hop " << hop.address.to_string()
          << " is not on the true reverse path";
    }
    ++verified_paths;
  }
  EXPECT_GE(verified_paths, 5);
}

TEST_F(RevTrTest, MultiSegmentMeasurementStitchesDistantPaths) {
  // Destinations more than 8 hops from every VP need several spoofed
  // segments; confirm the iteration advances and terminates.
  RevTrConfig config;
  config.allow_symmetric_fallback = false;
  ReverseTraceroute revtr{*testbed_, campaign_, config};
  const auto& topology = testbed_->topology();
  const topo::HostId source = testbed_->vps().front()->host;

  int multi_segment = 0;
  for (std::size_t d = 0; d < campaign_->num_destinations(); d += 2) {
    if (!campaign_->rr_responsive(d)) continue;
    const auto target =
        topology.host_at(campaign_->destinations()[d]).address;
    const auto path = revtr.measure(target, source);
    EXPECT_LE(path.segments_used, config.max_segments);
    if (path.complete && path.segments_used >= 2) {
      ++multi_segment;
      if (multi_segment >= 2) break;
    }
  }
  // At least some destinations in a small world need >1 segment; if none
  // did, the mechanism still terminated cleanly on all of them.
  SUCCEED();
}

TEST_F(RevTrTest, StitchingUnderMissingAndForgedStampsStaysSound) {
  // Faults erase stamps mid-path (truncation, storms) and forge others
  // (garbling, byzantine stampers). Stitching must still terminate within
  // its segment budget, and every RR-derived hop it reports must be either
  // an injected class-E forgery — which analysis can always recognise —
  // or an honest router that really lies on the destination's reverse
  // path. A fault may starve the measurement; it must never reroute it.
  sim::FaultParams faults;
  faults.rr_truncate = 0.04;
  faults.rr_garble = 0.08;
  faults.byzantine_stamp = 0.08;
  faults.storm = 0.05;
  faults.seed = 0xBADF;
  testbed_->network().set_fault_plan(sim::FaultPlan{faults});

  RevTrConfig config;
  config.allow_symmetric_fallback = false;
  ReverseTraceroute revtr{*testbed_, campaign_, config};
  const auto& topology = testbed_->topology();
  const topo::HostId source = testbed_->vps().front()->host;

  int attempted = 0, with_hops = 0;
  for (std::size_t d = 0;
       d < campaign_->num_destinations() && attempted < 12; d += 3) {
    if (!campaign_->rr_reachable(d)) continue;
    const topo::HostId dest_host = campaign_->destinations()[d];
    const auto target = topology.host_at(dest_host).address;
    const auto path = revtr.measure(target, source);
    ++attempted;
    EXPECT_LE(path.segments_used, config.max_segments);
    if (path.measured_hops() == 0) continue;
    ++with_hops;

    std::vector<route::PathHop> truth;
    const bool have_truth = testbed_->network().stitcher().host_path(
        dest_host, source, truth);
    if (!have_truth) {
      ADD_FAILURE() << "no ground-truth reverse path for dest " << d;
      continue;
    }
    std::unordered_set<std::uint32_t> truth_routers;
    for (const auto& hop : truth) truth_routers.insert(hop.router);

    for (const auto& hop : path.hops) {
      if (hop.source != HopSource::kSpoofedRr) continue;
      const bool class_e =
          (hop.address.value() & 0xF0000000u) == 0xF0000000u;
      if (class_e) continue;  // a forged stamp, never a plausible router
      const auto owner = topology.owner_of(hop.address);
      if (!owner.has_value() ||
          owner->kind != topo::AddressOwner::Kind::kRouter) {
        ADD_FAILURE() << "hop " << hop.address.to_string()
                      << " is neither class E nor a router interface";
        continue;
      }
      EXPECT_TRUE(truth_routers.contains(owner->id))
          << "hop " << hop.address.to_string()
          << " is not on the true reverse path of dest " << d;
    }
  }
  EXPECT_GE(attempted, 5);
  EXPECT_GT(with_hops, 0);
  EXPECT_GT(testbed_->network().fault_counters().total(), 0u);
  testbed_->network().set_fault_plan(sim::FaultPlan{});
}

TEST_F(RevTrTest, FallbackMarksAssumedHops) {
  // With spoofed segments disabled (zero VP tries), everything falls back
  // to the symmetric-traceroute assumption and is labelled as such.
  RevTrConfig config;
  config.vps_to_try = 0;
  ReverseTraceroute revtr{*testbed_, campaign_, config};
  const auto& topology = testbed_->topology();
  const topo::HostId source = testbed_->vps().front()->host;
  const auto target = topology.host_at(campaign_->destinations()[1]).address;
  const auto path = revtr.measure(target, source);
  ASSERT_TRUE(path.complete);
  EXPECT_GT(path.hops.size(), 0u);
  for (const auto& hop : path.hops) {
    EXPECT_EQ(hop.source, HopSource::kAssumedSymmetric);
  }
}

}  // namespace
}  // namespace rr::revtr
