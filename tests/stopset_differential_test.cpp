// Differential harness for redundancy-aware probing: wherever the
// methodology does not depend on redundant probes, analysis outputs with
// stop sets ON must be byte-identical to the classic full-probing run.
// The comparisons run on an ideal world (every stochastic nuisance
// disabled) because off-vs-on runs necessarily send *different* probe
// streams — in a lossy world the extra/elided sends shift loss draws and
// the comparison would measure noise, not the stop-set contract.
// Tier 2 — several campaigns and censuses per case.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "measure/campaign.h"
#include "measure/stopset.h"
#include "measure/testbed.h"
#include "measure/trace_census.h"
#include "measure/ttl_study.h"
#include "revtr/reverse_traceroute.h"

namespace rr::measure {
namespace {

/// Every stochastic nuisance disabled: responses, stamping, and routing
/// are pure functions of the topology, so off-vs-on differences can only
/// come from the stop sets themselves.
sim::BehaviorParams ideal_behaviors() {
  sim::BehaviorParams p;
  p.host_ping_responsive = {1.0, 1.0, 1.0, 1.0};
  p.as_dark = {0.0, 0.0, 0.0, 0.0};
  p.host_drops_rr = {0.0, 0.0, 0.0, 0.0};
  p.host_strips_rr = {0.0, 0.0, 0.0, 0.0};
  p.host_no_self_stamp = 0.0;
  p.host_stamps_alias = 0.0;
  p.host_responds_udp = 1.0;
  p.as_filters_edge = {0.0, 0.0, 0.0, 0.0};
  p.as_filters_transit = 0.0;
  p.as_never_stamps = 0.0;
  p.as_sometimes_stamps = 0.0;
  p.router_hidden = 0.0;
  p.router_anonymous = 0.0;
  p.router_responds_ping = 1.0;
  p.router_rate_limited = 0.0;
  p.strict_limited_vps = 0;
  p.base_loss = 0.0;
  p.options_extra_loss = 0.0;
  return p;
}

measure::TestbedConfig ideal_config() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 31337;
  config.behavior_params = ideal_behaviors();
  return config;
}

TEST(StopSetDifferential, CensusInterfaceDiscoveryIsIdenticalOffVsOn) {
  // The census's redundancy-independent analysis output is the
  // *interface* set: a forward stop elides a path suffix whose
  // interfaces the seeding trace already recorded, and a backward stop
  // fires on an interface this VP has already recorded — in an ideal
  // world the sorted union must hash identically off-vs-on.
  //
  // The *link* set is NOT in that subset: backward stopping is
  // Doubletree's documented approximation — the skipped low-TTL chain
  // toward a new target can differ from the chain the local fact was
  // learned on, so a handful of lateral adjacencies go unobserved. The
  // test pins that loss to a bound instead of pretending it is zero.
  // `reached` is likewise redundancy-dependent by construction: a
  // forward stop truncates the trace before the echo could be seen.
  TraceCensusConfig config;
  config.per_vp_dests = 48;
  config.round = 8;

  measure::Testbed off_bed{ideal_config()};
  config.use_stop_sets = false;
  const auto off = run_trace_census(off_bed, config);

  measure::Testbed on_bed{ideal_config()};
  config.use_stop_sets = true;
  const auto on = run_trace_census(on_bed, config);

  EXPECT_EQ(on.interfaces, off.interfaces);
  EXPECT_EQ(on.interface_hash, off.interface_hash);
  EXPECT_LE(on.links, off.links);
  EXPECT_GE(static_cast<double>(on.links),
            0.98 * static_cast<double>(off.links))
      << "backward-approximation link loss should stay marginal";
  EXPECT_GT(on.reached, 0u);
  EXPECT_LE(on.reached, off.reached);
  EXPECT_LT(on.probes_sent, off.probes_sent)
      << "the differential is vacuous if nothing was saved";
}

TEST(StopSetDifferential, Figure5RowsAreByteIdenticalOffVsOn) {
  // The TTL study's synthesized outcomes are exact in an ideal world: a
  // near destination stamped at slot s answers iff ttl >= s, a far one
  // expires through TTL 9 and answers at 64 — precisely the facts the
  // stop set encodes. Row contents must not change by a single count.
  TtlStudyConfig study_config;
  study_config.per_vp_per_class = 40;

  measure::Testbed off_bed{ideal_config()};
  const auto off_campaign = Campaign::run(off_bed);
  study_config.use_stop_sets = false;
  const auto off = ttl_study(off_bed, off_campaign, study_config);

  measure::Testbed on_bed{ideal_config()};
  const auto on_campaign = Campaign::run(on_bed);
  study_config.use_stop_sets = true;
  const auto on = ttl_study(on_bed, on_campaign, study_config);

  ASSERT_EQ(on.rows.size(), off.rows.size());
  for (std::size_t i = 0; i < on.rows.size(); ++i) {
    const auto& a = on.rows[i];
    const auto& b = off.rows[i];
    EXPECT_EQ(a.ttl, b.ttl);
    EXPECT_EQ(a.near_sent, b.near_sent) << "ttl " << b.ttl;
    EXPECT_EQ(a.near_replied, b.near_replied) << "ttl " << b.ttl;
    EXPECT_EQ(a.near_expired, b.near_expired) << "ttl " << b.ttl;
    EXPECT_EQ(a.far_sent, b.far_sent) << "ttl " << b.ttl;
    EXPECT_EQ(a.far_replied, b.far_replied) << "ttl " << b.ttl;
    EXPECT_EQ(a.far_expired, b.far_expired) << "ttl " << b.ttl;
  }
  EXPECT_GT(on.stats.probes_saved, 0u) << "the study must actually save";
  EXPECT_EQ(off.stats.probes_saved, 0u);
}

TEST(StopSetDifferential, RevtrPathsAreByteIdenticalWithMemoGate) {
  // Reverse traceroute needs complete fallback traces, so its gate runs
  // with forward stops off and remember_paths on: it only skips hops the
  // memo can backfill. Reported paths must match the ungated run hop for
  // hop.
  constexpr std::size_t kTargets = 12;

  measure::Testbed off_bed{ideal_config()};
  const auto off_campaign = Campaign::run(off_bed);
  measure::Testbed on_bed{ideal_config()};
  const auto on_campaign = Campaign::run(on_bed);

  StopSet local(8192);
  DoubletreeGate::Config gc;
  gc.forward_stop = false;  // a forward stop would abort the fallback
  gc.remember_paths = true;
  DoubletreeGate gate(&local, nullptr, gc);

  revtr::RevTrConfig off_config;
  revtr::ReverseTraceroute off_revtr(off_bed, &off_campaign, off_config);
  revtr::RevTrConfig on_config;
  on_config.trace_gate = &gate;
  revtr::ReverseTraceroute on_revtr(on_bed, &on_campaign, on_config);

  const auto& topology = off_bed.topology();
  const auto source = off_bed.vps().front()->host;
  const std::size_t n =
      std::min(kTargets, topology.destinations().size());
  int fallbacks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto target = topology.host_at(topology.destinations()[i]).address;
    const auto off_path = off_revtr.measure(target, source);
    const auto on_path = on_revtr.measure(target, source);
    EXPECT_EQ(on_path.complete, off_path.complete) << target.to_string();
    ASSERT_EQ(on_path.hops.size(), off_path.hops.size())
        << target.to_string();
    for (std::size_t h = 0; h < on_path.hops.size(); ++h) {
      EXPECT_EQ(on_path.hops[h].address, off_path.hops[h].address)
          << target.to_string() << " hop " << h;
      EXPECT_EQ(static_cast<int>(on_path.hops[h].source),
                static_cast<int>(off_path.hops[h].source));
    }
    fallbacks += std::any_of(
        off_path.hops.begin(), off_path.hops.end(), [](const auto& hop) {
          return hop.source == revtr::HopSource::kAssumedSymmetric;
        });
  }
  gate.finish_trace();
  // The property is about fallback traces; make sure some actually ran.
  EXPECT_GT(fallbacks + static_cast<int>(gate.stats().checks), 0);
}

}  // namespace
}  // namespace rr::measure
