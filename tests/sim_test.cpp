// Behaviour assignment and the packet-walking network simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "packet/datagram.h"
#include "packet/mutate.h"
#include "routing/oracle.h"
#include "sim/behavior.h"
#include "sim/network.h"
#include "sim/token_bucket.h"
#include "topology/generator.h"

namespace rr::sim {
namespace {

// ------------------------------------------------------------ TokenBucket

TEST(TokenBucket, AllowsBurstThenPolices) {
  TokenBucket bucket{10.0, 5.0};
  int allowed = 0;
  for (int i = 0; i < 20; ++i) {
    if (bucket.try_consume(0.0)) ++allowed;
  }
  EXPECT_EQ(allowed, 5);  // burst exhausted at t=0
}

TEST(TokenBucket, RefillsOverTime) {
  TokenBucket bucket{10.0, 5.0};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_consume(0.0));
  EXPECT_FALSE(bucket.try_consume(0.0));
  EXPECT_TRUE(bucket.try_consume(0.2));   // 2 tokens refilled
  EXPECT_TRUE(bucket.try_consume(0.2));
  EXPECT_FALSE(bucket.try_consume(0.2));
}

TEST(TokenBucket, SustainedRateMatchesConfig) {
  TokenBucket bucket{50.0, 10.0};
  int allowed = 0;
  const int probes = 1000;
  for (int i = 0; i < probes; ++i) {
    if (bucket.try_consume(i * 0.01)) ++allowed;  // offered 100 pps
  }
  // ~50 pps over 10 seconds => ~500 allowed (plus the burst).
  EXPECT_NEAR(allowed, 510, 30);
}

TEST(TokenBucket, ZeroRateMeansUnpoliced) {
  TokenBucket bucket{0.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_consume(0.0));
}

TEST(TokenBucket, ToleratesBackwardsTime) {
  TokenBucket bucket{10.0, 2.0};
  EXPECT_TRUE(bucket.try_consume(5.0));
  EXPECT_TRUE(bucket.try_consume(1.0));  // time regressed; no refill, no crash
  EXPECT_FALSE(bucket.try_consume(1.0));
}

// -------------------------------------------------------------- Behaviors

class SimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = topo::generate_test_topology(33);
    BehaviorParams params;
    behaviors_ = std::make_shared<Behaviors>(topo_, params);
    std::vector<topo::AsId> sources;
    for (const auto& vp : topo_->vantage_points()) {
      sources.push_back(topo_->host_at(vp.host).as_id);
    }
    sources.push_back(topo_->host_at(topo_->probe_host()).as_id);
    oracle_ = new route::RoutingOracle{topo_, topo::Epoch::k2016, sources};
  }
  static void TearDownTestSuite() {
    delete oracle_;
    oracle_ = nullptr;
    behaviors_.reset();
    topo_.reset();
  }

  void SetUp() override {
    network_ = std::make_unique<Network>(topo_, behaviors_, *oracle_,
                                         NetParams{});
  }

  /// A destination whose behaviour satisfies `pred`, for deterministic
  /// white-box scenarios.
  topo::HostId find_dest(
      const std::function<bool(topo::HostId)>& pred) const {
    for (const topo::HostId id : topo_->destinations()) {
      if (pred(id)) return id;
    }
    return topo::kNoHost;
  }

  /// Sends a ping(+RR) from the first VP host and returns the parsed reply.
  std::optional<pkt::Datagram> ping_from_vp(topo::HostId dst, int rr_slots,
                                            std::uint8_t ttl = 64) {
    const topo::HostId src = topo_->vantage_points().front().host;
    const auto probe =
        pkt::make_ping(topo_->host_at(src).address,
                       topo_->host_at(dst).address, 100, 1, ttl, rr_slots);
    auto bytes = probe.serialize();
    if (!bytes) return std::nullopt;
    const auto delivery = network_->send(src, std::move(*bytes), 0.0);
    if (!delivery) return std::nullopt;
    return pkt::Datagram::parse(delivery->bytes);
  }

  static std::shared_ptr<const topo::Topology> topo_;
  static std::shared_ptr<Behaviors> behaviors_;
  static route::RoutingOracle* oracle_;
  std::unique_ptr<Network> network_;
};

std::shared_ptr<const topo::Topology> SimTest::topo_;
std::shared_ptr<Behaviors> SimTest::behaviors_;
route::RoutingOracle* SimTest::oracle_ = nullptr;

TEST_F(SimTest, BehaviorAssignmentIsDeterministic) {
  Behaviors again{topo_, BehaviorParams{}};
  for (topo::HostId id = 0; id < topo_->hosts().size(); id += 11) {
    EXPECT_EQ(again.host(id).ping_responsive,
              behaviors_->host(id).ping_responsive);
    EXPECT_EQ(again.host(id).rr_handling, behaviors_->host(id).rr_handling);
  }
  for (topo::RouterId id = 0; id < topo_->routers().size(); id += 11) {
    EXPECT_EQ(again.router(id).stamps, behaviors_->router(id).stamps);
  }
}

TEST_F(SimTest, PingResponsiveHostAnswersEcho) {
  const auto dst = find_dest([&](topo::HostId id) {
    return behaviors_->host(id).ping_responsive;
  });
  ASSERT_NE(dst, topo::kNoHost);
  // Loss is rare but nonzero; try a few times.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const auto reply = ping_from_vp(dst, 0);
    if (!reply) continue;
    EXPECT_EQ(reply->header.source, topo_->host_at(dst).address);
    ASSERT_NE(reply->icmp(), nullptr);
    EXPECT_EQ(reply->icmp()->type, pkt::IcmpType::kEchoReply);
    return;
  }
  FAIL() << "no reply in 5 attempts";
}

TEST_F(SimTest, UnresponsiveHostStaysSilent) {
  const auto dst = find_dest([&](topo::HostId id) {
    return !behaviors_->host(id).ping_responsive;
  });
  ASSERT_NE(dst, topo::kNoHost);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_FALSE(ping_from_vp(dst, 0).has_value());
  }
}

TEST_F(SimTest, RecordRouteReplyCarriesStamps) {
  // Find a copying destination in a non-filtering AS near the VP.
  const topo::HostId src_host = topo_->vantage_points().front().host;
  const topo::AsId src_as = topo_->host_at(src_host).as_id;
  ASSERT_FALSE(behaviors_->as_behavior(src_as).filters_edge)
      << "test VP sits behind an option filter; pick another seed";

  bool found_any = false;
  for (const topo::HostId dst : topo_->destinations()) {
    const auto& hb = behaviors_->host(dst);
    const auto& ab = behaviors_->as_behavior(topo_->host_at(dst).as_id);
    if (!hb.ping_responsive || hb.rr_handling != RrHandling::kCopy ||
        ab.filters_edge) {
      continue;
    }
    const auto reply = ping_from_vp(dst, 9);
    if (!reply) continue;
    const auto* rr = reply->header.record_route();
    if (rr == nullptr) continue;
    found_any = true;
    EXPECT_GT(rr->recorded.size(), 0u);
    // Every recorded address must be a real assigned address.
    for (const auto& addr : rr->recorded) {
      EXPECT_TRUE(topo_->owner_of(addr).has_value())
          << addr.to_string() << " is not an assigned address";
    }
    break;
  }
  EXPECT_TRUE(found_any);
}

TEST_F(SimTest, SelfStampingDestinationAppearsInHeader) {
  const topo::HostId src_host = topo_->vantage_points().front().host;
  int reachable_seen = 0;
  for (const topo::HostId dst : topo_->destinations()) {
    const auto& hb = behaviors_->host(dst);
    if (!hb.ping_responsive || hb.rr_handling != RrHandling::kCopy ||
        !hb.stamps_self || hb.stamp_address != topo_->host_at(dst).address) {
      continue;
    }
    const auto reply = ping_from_vp(dst, 9);
    if (!reply) continue;
    const auto* rr = reply->header.record_route();
    if (rr == nullptr) continue;
    const auto& recorded = rr->recorded;
    const auto it = std::find(recorded.begin(), recorded.end(),
                              topo_->host_at(dst).address);
    if (it != recorded.end()) {
      ++reachable_seen;
      // Everything before the destination's stamp is a router egress on
      // the forward path.
      for (auto jt = recorded.begin(); jt != it; ++jt) {
        const auto owner = topo_->owner_of(*jt);
        ASSERT_TRUE(owner.has_value());
        EXPECT_EQ(owner->kind, topo::AddressOwner::Kind::kRouter);
      }
    }
    if (reachable_seen >= 3) break;
  }
  EXPECT_GE(reachable_seen, 1) << "no destination proved RR-reachable";
  (void)src_host;
}

TEST_F(SimTest, TtlExpiryProducesTimeExceededWithQuotedRr) {
  // TTL 1 expires at the very first router; the quote must carry the RR
  // option (still empty — stamping happens after the TTL check).
  const auto dst = topo_->destinations()[0];
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto reply = ping_from_vp(dst, 9, /*ttl=*/1);
    if (!reply) continue;  // anonymous first hop or loss
    ASSERT_NE(reply->icmp(), nullptr);
    EXPECT_EQ(reply->icmp()->type, pkt::IcmpType::kTimeExceeded);
    const auto* body = reply->icmp()->error_body();
    ASSERT_NE(body, nullptr);
    const auto quoted = pkt::Ipv4Header::parse(body->quoted_datagram);
    ASSERT_TRUE(quoted.has_value());
    EXPECT_EQ(quoted->ttl, 0);
    ASSERT_NE(quoted->record_route(), nullptr);
    return;
  }
  GTEST_SKIP() << "first-hop router is anonymous for this seed";
}

TEST_F(SimTest, UdpProbeGetsPortUnreachableWithQuote) {
  const topo::HostId src = topo_->vantage_points().front().host;
  for (const topo::HostId dst : topo_->destinations()) {
    const auto& hb = behaviors_->host(dst);
    const auto& ab = behaviors_->as_behavior(topo_->host_at(dst).as_id);
    if (!hb.ping_responsive || !hb.responds_udp || ab.filters_edge ||
        hb.rr_handling == RrHandling::kDrop) {
      continue;
    }
    const auto probe = pkt::make_udp_probe(
        topo_->host_at(src).address, topo_->host_at(dst).address, 40000,
        33435, 64, 9);
    auto bytes = probe.serialize();
    ASSERT_TRUE(bytes.has_value());
    const auto delivery = network_->send(src, std::move(*bytes), 0.0);
    if (!delivery) continue;
    const auto reply = pkt::Datagram::parse(delivery->bytes);
    ASSERT_TRUE(reply.has_value());
    ASSERT_NE(reply->icmp(), nullptr);
    EXPECT_EQ(reply->icmp()->type, pkt::IcmpType::kDestUnreachable);
    EXPECT_EQ(reply->icmp()->code, pkt::kCodePortUnreachable);
    const auto* error_body = reply->icmp()->error_body();
    ASSERT_NE(error_body, nullptr);
    const auto quoted = pkt::Ipv4Header::parse(error_body->quoted_datagram);
    ASSERT_TRUE(quoted.has_value());
    // The quote reflects the datagram as it arrived: forward stamps only.
    ASSERT_NE(quoted->record_route(), nullptr);
    return;
  }
  FAIL() << "no UDP-responsive destination answered";
}

TEST_F(SimTest, EdgeFilteringBlocksOptionsButNotPlainPings) {
  // A destination in an edge-filtering AS answers ping but not ping-RR.
  const auto dst = find_dest([&](topo::HostId id) {
    const auto& hb = behaviors_->host(id);
    const auto& ab = behaviors_->as_behavior(topo_->host_at(id).as_id);
    return hb.ping_responsive && ab.filters_edge &&
           hb.rr_handling == RrHandling::kCopy;
  });
  if (dst == topo::kNoHost) GTEST_SKIP() << "no filtered dest in this seed";

  bool ping_ok = false;
  for (int attempt = 0; attempt < 5 && !ping_ok; ++attempt) {
    ping_ok = ping_from_vp(dst, 0).has_value();
  }
  EXPECT_TRUE(ping_ok);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_FALSE(ping_from_vp(dst, 9).has_value());
  }
}

TEST_F(SimTest, RateLimiterDropsFastOptionsTraffic) {
  // Saturate one policed router via a strict-limited VP if present.
  const auto& strict = behaviors_->strict_limited_vp_indices();
  if (strict.empty()) GTEST_SKIP() << "no strict-limited VP in this seed";
  const auto& vp = topo_->vantage_points()[strict.front()];
  const topo::HostId src = vp.host;

  // Find any destination that answers ping-RR from this VP at slow rate.
  topo::HostId dst = topo::kNoHost;
  for (const topo::HostId candidate : topo_->destinations()) {
    const auto probe = pkt::make_ping(topo_->host_at(src).address,
                                      topo_->host_at(candidate).address, 7,
                                      1, 64, 9);
    auto bytes = probe.serialize();
    const auto delivery = network_->send(src, std::move(*bytes), 1000.0);
    if (delivery) {
      dst = candidate;
      break;
    }
  }
  if (dst == topo::kNoHost) GTEST_SKIP() << "VP cannot probe RR at all";

  // Now probe at 200 pps: most probes must be policed.
  network_->reset();
  int answered = 0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    const auto probe = pkt::make_ping(
        topo_->host_at(src).address, topo_->host_at(dst).address, 7,
        static_cast<std::uint16_t>(i + 2), 64, 9);
    auto bytes = probe.serialize();
    if (network_->send(src, std::move(*bytes), i * 0.005)) ++answered;
  }
  EXPECT_LT(answered, probes / 2);
  EXPECT_GT(network_->counters().dropped_rate_limit, 0u);
}

TEST_F(SimTest, CountersTrackTraffic) {
  network_->reset();
  const auto dst = topo_->destinations()[1];
  (void)ping_from_vp(dst, 0);
  EXPECT_EQ(network_->counters().sent, 1u);
}

TEST_F(SimTest, RepliesUseDeviceIpIds) {
  // Two pings to the same responsive destination: IP-IDs must advance.
  const auto dst = find_dest([&](topo::HostId id) {
    return behaviors_->host(id).ping_responsive;
  });
  ASSERT_NE(dst, topo::kNoHost);
  std::vector<std::uint16_t> ids;
  for (int i = 0; i < 6 && ids.size() < 2; ++i) {
    const auto reply = ping_from_vp(dst, 0);
    if (reply) ids.push_back(reply->header.identification);
  }
  ASSERT_GE(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
}

}  // namespace
}  // namespace rr::sim
