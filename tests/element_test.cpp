// Element-level conformance kit for the dataplane (sim/element.h).
//
// Each behaviour element is exercised in isolation against a hand-built
// HopContext over a real serialized ping-RR buffer — spec tables for the
// verdict/counter/byte effects each element owes the pipeline, independent
// of Network::walk. The run-list compiler (sim/pipeline.h) gets the same
// treatment: exact expected element sequences per personality, including
// every compile-time elision and the TTL+stamp peephole fusion.
//
// The end-to-end bit-identity claim (pipeline vs legacy walk over whole
// campaigns) lives in tests/pipeline_differential_test.cpp; this file is
// the unit layer that makes a conformance failure there debuggable.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/address.h"
#include "packet/view.h"
#include "packet/wire.h"
#include "sim/behavior.h"
#include "sim/element.h"
#include "sim/fault.h"
#include "sim/pipeline.h"
#include "sim/token_bucket.h"

namespace rr::sim {
namespace {

constexpr net::IPv4Address kSrc{10, 0, 0, 1};
constexpr net::IPv4Address kDst{10, 0, 0, 2};
constexpr net::IPv4Address kEgress{10, 1, 2, 3};

std::vector<std::uint8_t> make_ping_rr(std::uint8_t ttl = 64,
                                       int rr_slots = 9) {
  std::vector<std::uint8_t> out;
  pkt::build_ping(out, kSrc, kDst, /*identifier=*/7, /*sequence=*/1, ttl,
                  rr_slots);
  return out;
}

/// Internet-checksum fold over the IPv4 header; a correct stored checksum
/// makes this 0xFFFF. Independent of the incremental-update code under
/// test, so it catches a delta bug both engines could share.
std::uint16_t header_fold(std::span<const std::uint8_t> bytes) {
  const std::size_t header_bytes = (bytes[0] & 0x0F) * std::size_t{4};
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header_bytes; i += 2) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8 | bytes[i + 1];
  }
  while ((sum >> 16) != 0) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

/// A packet + context rig: one leg's HopContext over a fresh buffer, with
/// per-hop fields filled in as the walk loop would.
struct Rig {
  explicit Rig(std::vector<std::uint8_t> packet)
      : bytes(std::move(packet)), view(bytes) {
    ctx.view = &view;
    ctx.bytes = bytes;
    ctx.has_options = true;
    ctx.flow = 0x1234;
    ctx.src_as = 1;
    ctx.dst_as = 2;
    ctx.counters = &counters;
    ctx.fault_counters = &fault_counters;
    ctx.router = 3;
    ctx.egress = kEgress;
    ctx.as_id = 5;
    ctx.hop = 2;
    ctx.now = 1.5;
  }

  std::vector<std::uint8_t> bytes;
  pkt::Ipv4HeaderView view;
  NetCounters counters;
  FaultCounters fault_counters;
  HopContext ctx;
};

std::uint64_t drops(const NetCounters& c) {
  return c.dropped_loss + c.dropped_filter + c.dropped_rate_limit +
         c.dropped_ttl + c.dropped_unroutable;
}

// ------------------------------------------------------- run-list packing

TEST(RunList, PacksAppendsAndTerminates) {
  PackedRunList list = 0;
  EXPECT_EQ(run_list_size(list), 0u);
  const ElementOp ops[] = {
      ElementOp::kFaultInject, ElementOp::kBaseLoss, ElementOp::kSlowPathLoss,
      ElementOp::kStormGate,   ElementOp::kCoppGate, ElementOp::kEdgeFilter,
      ElementOp::kTtl,         ElementOp::kStamp,
  };
  for (const ElementOp op : ops) list = run_list_append(list, op);
  ASSERT_EQ(run_list_size(list), std::size(ops));
  for (std::size_t k = 0; k < std::size(ops); ++k) {
    EXPECT_EQ(run_list_at(list, k), ops[k]) << "step " << k;
  }
  EXPECT_EQ(run_list_at(list, std::size(ops)), ElementOp::kEnd);
}

// --------------------------------------------------- compiler spec tables

std::vector<ElementOp> steps(PackedRunList list) {
  std::vector<ElementOp> out;
  for (std::size_t k = 0; k < run_list_size(list); ++k) {
    out.push_back(run_list_at(list, k));
  }
  return out;
}

PackedRunList list_for(const RunTable& table, std::uint8_t flags,
                       bool has_options) {
  return table[(has_options ? HopRow::kNumPersonalities : 0) + flags];
}

TEST(CompileRunTable, FaultFreeZeroLossPersonalities) {
  const RunTable table = compile_run_table(PipelineConfig{});
  using E = ElementOp;
  // Plain packets: the whole slow path is elided; only TTL remains — and
  // not even that for hidden routers.
  EXPECT_EQ(steps(list_for(table, 0, false)), (std::vector<E>{E::kTtl}));
  EXPECT_EQ(steps(list_for(table, HopRow::kHidden, false)),
            (std::vector<E>{}));
  // The census's hottest personality: visible stamping router, options
  // packet, no faults — fused to a single element.
  EXPECT_EQ(steps(list_for(table, HopRow::kStamps, true)),
            (std::vector<E>{E::kTtlStampTrusted}));
  // Hidden stamper: no TTL element, so no fusion partner — trusted stamp.
  EXPECT_EQ(steps(list_for(table, HopRow::kHidden | HopRow::kStamps, true)),
            (std::vector<E>{E::kStampTrusted}));
  // Non-stamping visible router on the options path: just TTL.
  EXPECT_EQ(steps(list_for(table, 0, true)), (std::vector<E>{E::kTtl}));
  // CoPP gate precedes the fused TTL+stamp.
  EXPECT_EQ(
      steps(list_for(table, HopRow::kStamps | HopRow::kRateLimited, true)),
      (std::vector<E>{E::kCoppGate, E::kTtlStampTrusted}));
  // A transit filter shadows the edge filter.
  EXPECT_EQ(steps(list_for(table, HopRow::kFiltersEdge, true)),
            (std::vector<E>{E::kEdgeFilter, E::kTtl}));
  EXPECT_EQ(steps(list_for(
                table, HopRow::kFiltersTransit | HopRow::kFiltersEdge, true)),
            (std::vector<E>{E::kTransitFilter, E::kTtl}));
}

TEST(CompileRunTable, LossGatesCompiledOnlyWhenProbable) {
  PipelineConfig config;
  config.base_loss = 0.01;
  config.options_extra_loss = 0.02;
  const RunTable table = compile_run_table(config);
  using E = ElementOp;
  EXPECT_EQ(steps(list_for(table, 0, false)),
            (std::vector<E>{E::kBaseLoss, E::kTtl}));
  EXPECT_EQ(steps(list_for(table, HopRow::kStamps, true)),
            (std::vector<E>{E::kBaseLoss, E::kSlowPathLoss,
                            E::kTtlStampTrusted}));
}

TEST(CompileRunTable, FaultPlanDisablesTrustAndFusion) {
  PipelineConfig config;
  config.faults_enabled = true;
  const RunTable table = compile_run_table(config);
  using E = ElementOp;
  EXPECT_EQ(steps(list_for(table, 0, false)),
            (std::vector<E>{E::kFaultInject, E::kTtl}));
  EXPECT_EQ(steps(list_for(table, HopRow::kStamps, true)),
            (std::vector<E>{E::kFaultInject, E::kStormGate, E::kTtl,
                            E::kStamp}));
  // The trusted fast paths are licensed by the *absence* of fault
  // elements; no faulted run list may contain them.
  for (const PackedRunList list : table) {
    for (std::size_t k = 0; k < run_list_size(list); ++k) {
      EXPECT_NE(run_list_at(list, k), ElementOp::kStampTrusted);
      EXPECT_NE(run_list_at(list, k), ElementOp::kTtlStampTrusted);
    }
  }
}

TEST(PersonalityFlags, FoldsRouterAndAsBehaviour) {
  RouterBehavior rb;
  AsBehavior ab;
  EXPECT_EQ(personality_flags(rb, ab), HopRow::kStamps);
  rb.stamps = false;
  rb.hidden = true;
  rb.options_rate_pps = 100.0f;
  ab.filters_transit = true;
  ab.filters_edge = true;
  EXPECT_EQ(personality_flags(rb, ab),
            HopRow::kHidden | HopRow::kRateLimited | HopRow::kFiltersTransit |
                HopRow::kFiltersEdge);
}

// ------------------------------------------------------ TTL / loss / filter

TEST(TtlDecrementElement, DecrementsExpiresAndDropsSpent) {
  const TtlDecrementElement ttl;
  {
    Rig rig{make_ping_rr(64)};
    EXPECT_EQ(ttl.process(rig.ctx), HopVerdict::kContinue);
    EXPECT_EQ(rig.bytes[8], 63);
    EXPECT_EQ(header_fold(rig.bytes), 0xFFFF);
    EXPECT_EQ(drops(rig.counters), 0u);
  }
  {
    Rig rig{make_ping_rr(1)};  // expires at this hop: Time-Exceeded
    EXPECT_EQ(ttl.process(rig.ctx), HopVerdict::kExpire);
    EXPECT_EQ(drops(rig.counters), 0u);
  }
  {
    Rig rig{make_ping_rr(1)};  // a doomed packet expires silently
    rig.ctx.doomed = true;
    EXPECT_EQ(ttl.process(rig.ctx), HopVerdict::kDrop);
    EXPECT_EQ(drops(rig.counters), 0u);
  }
  {
    Rig rig{make_ping_rr(0)};  // already spent: anonymous drop
    EXPECT_EQ(ttl.process(rig.ctx), HopVerdict::kDrop);
    EXPECT_EQ(rig.counters.dropped_ttl, 1u);
  }
}

TEST(LossElements, DegenerateRatesAndDoomCharging) {
  BaseLossElement base;
  Rig rig{make_ping_rr()};
  base.probability = 0.0;
  EXPECT_EQ(base.process(rig.ctx), HopVerdict::kContinue);
  base.probability = 1.0;
  EXPECT_EQ(base.process(rig.ctx), HopVerdict::kDrop);
  EXPECT_EQ(rig.counters.dropped_loss, 1u);
  rig.ctx.doomed = true;  // doom already charged its drop at the fault hop
  EXPECT_EQ(base.process(rig.ctx), HopVerdict::kDrop);
  EXPECT_EQ(rig.counters.dropped_loss, 1u);
}

TEST(LossElements, DrawsArePureAndPurposeIndependent) {
  BaseLossElement base;
  base.probability = 0.5;
  SlowPathLossElement slow;
  slow.probability = 0.5;
  Rig a{make_ping_rr()};
  Rig b{make_ping_rr()};
  int base_drops = 0;
  int diverged = 0;
  for (std::uint64_t flow = 0; flow < 256; ++flow) {
    a.ctx.flow = b.ctx.flow = flow;
    a.ctx.doomed = b.ctx.doomed = false;
    const HopVerdict base_a = base.process(a.ctx);
    EXPECT_EQ(base_a, base.process(b.ctx));  // pure function of the key
    base_drops += base_a == HopVerdict::kDrop ? 1 : 0;
    diverged += (base_a == slow.process(a.ctx)) ? 0 : 1;
  }
  EXPECT_GT(base_drops, 64);  // ~50%: both outcomes occur...
  EXPECT_LT(base_drops, 192);
  EXPECT_GT(diverged, 0);  // ...and the two purposes draw independently
}

TEST(FilterElements, TransitAlwaysEdgeOnlyAtEnds) {
  const TransitFilterElement transit;
  const EdgeFilterElement edge;
  Rig rig{make_ping_rr()};
  rig.ctx.as_id = 99;  // neither source nor destination AS
  EXPECT_EQ(edge.process(rig.ctx), HopVerdict::kContinue);
  EXPECT_EQ(transit.process(rig.ctx), HopVerdict::kDrop);
  EXPECT_EQ(rig.counters.dropped_filter, 1u);
  rig.ctx.as_id = rig.ctx.dst_as;
  EXPECT_EQ(edge.process(rig.ctx), HopVerdict::kDrop);
  EXPECT_EQ(rig.counters.dropped_filter, 2u);
  rig.ctx.as_id = rig.ctx.src_as;
  rig.ctx.doomed = true;  // doomed drops are never double-charged
  EXPECT_EQ(edge.process(rig.ctx), HopVerdict::kDrop);
  EXPECT_EQ(rig.counters.dropped_filter, 2u);
}

// ------------------------------------------------------------- CoPP gate

TEST(CoppGateElement, DeferredModeRecordsSerialModeConsumes) {
  const CoppGateElement copp;
  {
    Rig rig{make_ping_rr()};
    ProbeTrace trace;
    rig.ctx.trace = &trace;
    rig.ctx.leg = 1;
    EXPECT_EQ(copp.process(rig.ctx), HopVerdict::kContinue);
    ASSERT_EQ(trace.events.size(), 1u);
    EXPECT_EQ(trace.events[0].router, rig.ctx.router);
    EXPECT_EQ(trace.events[0].time, rig.ctx.now);
    EXPECT_TRUE(trace.events[0].reply_leg);
    EXPECT_EQ(drops(rig.counters), 0u);  // optimistic: resolved in replay
  }
  {
    Rig rig{make_ping_rr()};
    std::vector<TokenBucket> buckets(rig.ctx.router + 1,
                                     TokenBucket{/*rate_per_s=*/1.0,
                                                 /*burst=*/1.0});
    rig.ctx.buckets = buckets.data();
    EXPECT_EQ(copp.process(rig.ctx), HopVerdict::kContinue);
    EXPECT_EQ(copp.process(rig.ctx), HopVerdict::kDrop);  // bucket empty
    EXPECT_EQ(rig.counters.dropped_rate_limit, 1u);
  }
}

// ------------------------------------------------------- fault elements

TEST(FaultInjectorElement, ChecksumCorruptionDoomsOnce) {
  FaultParams params;
  params.checksum_corrupt = 1.0;
  const FaultPlan plan{params};
  FaultInjectorElement fault;
  fault.plan = &plan;
  Rig rig{make_ping_rr()};
  ProbeTrace trace;
  trace.events.push_back({1, 0.5, false});
  rig.ctx.trace = &trace;
  EXPECT_EQ(fault.process(rig.ctx), HopVerdict::kContinue);  // ghost walks on
  EXPECT_TRUE(rig.ctx.doomed);
  EXPECT_EQ(rig.counters.dropped_loss, 1u);  // charged at the fault hop
  EXPECT_EQ(rig.fault_counters.total(), 1u);
  EXPECT_TRUE(trace.doomed);
  EXPECT_TRUE(trace.doom_charged_loss);
  EXPECT_EQ(trace.doom_after_events, 1u);
  // Already doomed: the next corrupting hop cannot re-charge the drop.
  ++rig.ctx.hop;
  EXPECT_EQ(fault.process(rig.ctx), HopVerdict::kContinue);
  EXPECT_EQ(rig.counters.dropped_loss, 1u);
}

TEST(StormGateElement, ActiveWindowDoomsWithoutDropping) {
  FaultParams params;
  params.storm = 1.0;
  const FaultPlan plan{params};
  StormGateElement storm;
  storm.plan = &plan;
  // Find an active (router, time) window; at rate 1.0 one must exist.
  topo::RouterId router = topo::kNoRouter;
  double when = 0.0;
  for (topo::RouterId r = 0; r < 64 && router == topo::kNoRouter; ++r) {
    for (int t = 0; t < 100; ++t) {
      if (plan.storm_active(r, t * 0.5)) {
        router = r;
        when = t * 0.5;
        break;
      }
    }
  }
  ASSERT_NE(router, topo::kNoRouter) << "no storm window found at rate 1.0";
  Rig rig{make_ping_rr()};
  ProbeTrace trace;
  rig.ctx.trace = &trace;
  rig.ctx.router = router;
  rig.ctx.now = when;
  EXPECT_EQ(storm.process(rig.ctx), HopVerdict::kContinue);
  EXPECT_TRUE(rig.ctx.doomed);
  EXPECT_EQ(rig.counters.dropped_rate_limit, 1u);
  EXPECT_TRUE(trace.doomed);
  EXPECT_FALSE(trace.doom_charged_loss);  // charged as a rate-limit drop
}

// --------------------------------------------- stamping byte-for-byte parity

TEST(StampElements, TrustedPathMatchesFaultAwarePathByteForByte) {
  const FaultParams inert;  // all rates zero: byzantine draw never fires
  const FaultPlan plan{inert};
  StampElement aware;
  aware.plan = &plan;
  const TrustedStampElement trusted;
  Rig a{make_ping_rr()};
  Rig b{make_ping_rr()};
  for (std::size_t hop = 0; hop < 9; ++hop) {
    a.ctx.hop = b.ctx.hop = hop;
    EXPECT_EQ(aware.process(a.ctx), HopVerdict::kContinue);
    EXPECT_EQ(trusted.process(b.ctx), HopVerdict::kContinue);
    ASSERT_EQ(a.bytes, b.bytes) << "hop " << hop;
    EXPECT_EQ(header_fold(a.bytes), 0xFFFF);
  }
}

TEST(FusedTtlStamp, MatchesUnfusedPairAtEveryTtl) {
  const TtlDecrementElement ttl;
  const TrustedStampElement trusted;
  const TtlTrustedStampElement fused;
  for (const std::uint8_t start_ttl : {std::uint8_t{64}, std::uint8_t{2},
                                       std::uint8_t{1}, std::uint8_t{0}}) {
    Rig pair{make_ping_rr(start_ttl)};
    Rig one{make_ping_rr(start_ttl)};
    HopVerdict pair_verdict = ttl.process(pair.ctx);
    if (pair_verdict == HopVerdict::kContinue) {
      pair_verdict = trusted.process(pair.ctx);
    }
    const HopVerdict fused_verdict = fused.process(one.ctx);
    EXPECT_EQ(fused_verdict, pair_verdict) << "ttl " << int{start_ttl};
    ASSERT_EQ(one.bytes, pair.bytes) << "ttl " << int{start_ttl};
    EXPECT_EQ(one.counters.dropped_ttl, pair.counters.dropped_ttl);
    if (start_ttl > 1) {
      EXPECT_EQ(header_fold(one.bytes), 0xFFFF);
      const auto info = pkt::inspect_header(one.bytes);
      ASSERT_TRUE(info.has_value());
      const auto rr = pkt::rr_wire(one.bytes, info->rr_offset);
      ASSERT_EQ(rr.filled, 1u);
      EXPECT_EQ(pkt::rr_slot(one.bytes, rr, 0), kEgress);
    }
  }
}

TEST(FusedTtlStamp, FullRrOptionStillDecrementsAndValidates) {
  const TtlTrustedStampElement fused;
  Rig rig{make_ping_rr(64)};
  for (int hop = 0; hop < 12; ++hop) {  // 9 slots, then 3 full-option hops
    rig.ctx.hop = static_cast<std::size_t>(hop);
    EXPECT_EQ(fused.process(rig.ctx), HopVerdict::kContinue);
    EXPECT_EQ(header_fold(rig.bytes), 0xFFFF) << "hop " << hop;
  }
  EXPECT_EQ(rig.bytes[8], 64 - 12);
  const auto info = pkt::inspect_header(rig.bytes);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(pkt::rr_wire(rig.bytes, info->rr_offset).filled, 9u);
}

// Run a whole hop through the interpreter: the packed-list dispatch must
// execute elements in order and stop at the first non-continue verdict.
TEST(RunHop, ExecutesListInOrderAndShortCircuits) {
  const RunTable table = compile_run_table(PipelineConfig{});
  const ElementSet elements{};
  {
    Rig rig{make_ping_rr(64)};
    const auto verdict = run_hop(list_for(table, HopRow::kStamps, true),
                                 elements, rig.ctx);
    EXPECT_EQ(verdict, HopVerdict::kContinue);
    EXPECT_EQ(rig.bytes[8], 63);  // TTL element ran
    const auto info = pkt::inspect_header(rig.bytes);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(pkt::rr_wire(rig.bytes, info->rr_offset).filled, 1u);
  }
  {
    Rig rig{make_ping_rr(64)};
    rig.ctx.as_id = rig.ctx.dst_as;  // edge filter fires before TTL
    const auto verdict = run_hop(list_for(table, HopRow::kFiltersEdge, true),
                                 elements, rig.ctx);
    EXPECT_EQ(verdict, HopVerdict::kDrop);
    EXPECT_EQ(rig.bytes[8], 64);  // short-circuit: TTL element never ran
    EXPECT_EQ(rig.counters.dropped_filter, 1u);
  }
}

}  // namespace
}  // namespace rr::sim
