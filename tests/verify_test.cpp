// Tests for tools/verify — the run-list abstract interpreter — and for
// the run_list_append capacity contract it polices.
//
// RroptVerify.RunTableSound is the tier-1 wiring point from ISSUE 10: the
// tables compile_run_table emits for the repo's real configs (default,
// paper-scale, faults-on, zero-loss) plus ~500 seeded random configs and
// element chains must all prove sound. The negative tests then corrupt
// lists in every way the invariants name and require the verifier to call
// each one out by its invariant id — a verifier that proves everything is
// worthless.
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/behavior.h"
#include "sim/pipeline.h"
#include "verify/verify.h"

namespace rr {
namespace {

using sim::ElementOp;
using sim::HopRow;
using sim::PackedRunList;
using sim::PipelineConfig;
using verify::OptionState;
using verify::Violation;

[[nodiscard]] PipelineConfig default_config() {
  const sim::BehaviorParams params{};
  return {false, params.base_loss, params.options_extra_loss};
}

[[nodiscard]] bool has_invariant(const std::vector<Violation>& violations,
                                 const std::string& id) {
  return std::any_of(violations.begin(), violations.end(),
                     [&id](const Violation& v) { return v.invariant == id; });
}

[[nodiscard]] PackedRunList pack(std::initializer_list<ElementOp> ops) {
  PackedRunList list = 0;
  for (const ElementOp op : ops) list = sim::run_list_append(list, op);
  return list;
}

// ---------------------------------------------------------------- tier-1

TEST(RroptVerify, RunTableSound) {
  // The configs the repo actually runs. Paper scale shares the default
  // BehaviorParams losses (census_scale changes topology, not behaviour).
  const sim::BehaviorParams params{};
  const std::vector<PipelineConfig> real{
      {false, params.base_loss, params.options_extra_loss},  // default
      {false, params.base_loss, params.options_extra_loss},  // paper
      {true, params.base_loss, params.options_extra_loss},   // faults on
      {false, 0.0, 0.0},                                     // max elision
  };
  for (const PipelineConfig& config : real) {
    const sim::RunTable table = sim::compile_run_table(config);
    const verify::TableReport report = verify::verify_run_table(table, config);
    EXPECT_TRUE(report.ok()) << verify::format_report(report, false);
    EXPECT_EQ(report.entries.size(), 2 * HopRow::kNumPersonalities);
  }

  // ~500 seeded random configs through compile -> verify: every table the
  // compiler can emit proves sound, not just the four we ship.
  std::mt19937_64 rng{0xbeefcafe};
  std::uniform_real_distribution<double> loss{0.0, 0.05};
  for (int round = 0; round < 500; ++round) {
    const PipelineConfig config{(rng() & 1) != 0,
                                (rng() & 1) != 0 ? loss(rng) : 0.0,
                                (rng() & 1) != 0 ? loss(rng) : 0.0};
    const sim::RunTable table = sim::compile_run_table(config);
    const verify::TableReport report = verify::verify_run_table(table, config);
    ASSERT_TRUE(report.ok())
        << "round " << round << "\n"
        << verify::format_report(report, false);
  }
}

TEST(RroptVerify, RandomLegalChainsProveSound) {
  // Seeded random element chains built the way the compiler builds them —
  // a phase-ordered subset with at most one TTL write and one stamp —
  // must verify clean through verify_chain (which also round-trips the
  // packed encoding).
  std::mt19937_64 rng{0x5eed5eed};
  for (int round = 0; round < 500; ++round) {
    const bool faults = (rng() & 1) != 0;
    const PipelineConfig config{faults, 0.01, 0.01};
    std::vector<ElementOp> chain;
    if (faults) chain.push_back(ElementOp::kFaultInject);
    if ((rng() & 1) != 0) chain.push_back(ElementOp::kBaseLoss);
    if ((rng() & 1) != 0) chain.push_back(ElementOp::kSlowPathLoss);
    if (faults && (rng() & 1) != 0) chain.push_back(ElementOp::kStormGate);
    if ((rng() & 1) != 0) chain.push_back(ElementOp::kCoppGate);
    switch (rng() % 3) {
      case 0: chain.push_back(ElementOp::kTransitFilter); break;
      case 1: chain.push_back(ElementOp::kEdgeFilter); break;
      default: break;
    }
    const bool ttl = (rng() & 1) != 0;
    const bool stamp = (rng() & 1) != 0;
    if (ttl && stamp && !faults) {
      chain.push_back(ElementOp::kTtlStampTrusted);
    } else {
      if (ttl) chain.push_back(ElementOp::kTtl);
      if (stamp) {
        chain.push_back(faults ? ElementOp::kStamp
                               : ElementOp::kStampTrusted);
      }
    }
    const auto violations =
        verify::verify_chain(chain, OptionState::kPresent, config);
    ASSERT_TRUE(violations.empty())
        << "round " << round << ": " << violations.front().invariant << ": "
        << violations.front().message;
  }
}

// ----------------------------------------------- negative: each invariant

TEST(RroptVerify, FlagsOutOfOrderOpcodes) {
  // TTL before the CoPP gate breaks the load-bearing legacy branch order.
  const auto violations =
      verify::verify_list(pack({ElementOp::kTtl, ElementOp::kCoppGate}),
                          OptionState::kPresent, default_config());
  EXPECT_TRUE(has_invariant(violations, "order"));
}

TEST(RroptVerify, FlagsDoubleTtlDecrement) {
  const auto violations =
      verify::verify_list(pack({ElementOp::kTtl, ElementOp::kTtl}),
                          OptionState::kAbsent, default_config());
  EXPECT_TRUE(has_invariant(violations, "ttl-monotone"));
}

TEST(RroptVerify, FlagsDoubleRrAdvance) {
  const auto violations = verify::verify_list(
      pack({ElementOp::kStampTrusted, ElementOp::kStampTrusted}),
      OptionState::kPresent, default_config());
  EXPECT_TRUE(has_invariant(violations, "rr-monotone"));
}

TEST(RroptVerify, FlagsFusedFollowedByStamp) {
  // The fused opcode already advanced the pointer; a trailing stamp both
  // double-advances and breaks the phase order.
  const auto violations = verify::verify_list(
      pack({ElementOp::kTtlStampTrusted, ElementOp::kStamp}),
      OptionState::kPresent, default_config());
  EXPECT_TRUE(has_invariant(violations, "rr-monotone"));
  EXPECT_TRUE(has_invariant(violations, "order"));
}

TEST(RroptVerify, FlagsOptionOpcodeInNoOptionsBank) {
  const auto violations =
      verify::verify_list(pack({ElementOp::kTtl, ElementOp::kStampTrusted}),
                          OptionState::kAbsent, default_config());
  EXPECT_TRUE(has_invariant(violations, "options-bank"));
}

TEST(RroptVerify, FlagsTrustedStampAfterFault) {
  PipelineConfig faulty = default_config();
  faulty.faults_enabled = true;
  const auto violations = verify::verify_list(
      pack({ElementOp::kFaultInject, ElementOp::kTtl,
            ElementOp::kStampTrusted}),
      OptionState::kPresent, faulty);
  EXPECT_TRUE(has_invariant(violations, "trusted-after-fault"));
  EXPECT_TRUE(has_invariant(violations, "trusted-under-faults"));
}

TEST(RroptVerify, FlagsTrustedStampUnderFaultConfig) {
  // Even with no fault opcode in *this* list, a faults-enabled config
  // voids the structural proof (another hop's fault element may rewrite
  // option bytes mid-walk).
  PipelineConfig faulty = default_config();
  faulty.faults_enabled = true;
  const auto violations =
      verify::verify_list(pack({ElementOp::kTtl, ElementOp::kStampTrusted}),
                          OptionState::kPresent, faulty);
  EXPECT_TRUE(has_invariant(violations, "trusted-under-faults"));
  EXPECT_FALSE(has_invariant(violations, "trusted-after-fault"));
}

TEST(RroptVerify, FlagsDeadCodePastTerminator) {
  // Hand-corrupt: kTtl at nibble 0, kEnd at nibble 1, kStamp at nibble 2.
  const PackedRunList list =
      static_cast<PackedRunList>(ElementOp::kTtl) |
      (static_cast<PackedRunList>(ElementOp::kStamp) << 8);
  const auto violations =
      verify::verify_list(list, OptionState::kPresent, default_config());
  EXPECT_TRUE(has_invariant(violations, "dead-code"));
}

TEST(RroptVerify, FlagsUnknownOpcodeNibble) {
  const PackedRunList list = 0xF;  // nibble value 15: no such opcode
  const auto violations =
      verify::verify_list(list, OptionState::kPresent, default_config());
  EXPECT_TRUE(has_invariant(violations, "decode"));
}

TEST(RroptVerify, FlagsOverlongChain) {
  // Nine opcodes: one more than the packed capacity. run_list_append
  // rejects the ninth, so the compile would silently drop behaviour —
  // verify_chain must flag it rather than verify the truncated list.
  const std::vector<ElementOp> chain{
      ElementOp::kFaultInject, ElementOp::kBaseLoss,
      ElementOp::kSlowPathLoss, ElementOp::kStormGate, ElementOp::kCoppGate,
      ElementOp::kTransitFilter, ElementOp::kEdgeFilter, ElementOp::kTtl,
      ElementOp::kStamp};
  PipelineConfig faulty = default_config();
  faulty.faults_enabled = true;
  const auto violations =
      verify::verify_chain(chain, OptionState::kPresent, faulty);
  EXPECT_TRUE(has_invariant(violations, "overflow"));
}

TEST(RroptVerify, FlagsCorruptedTableEntry) {
  // Corrupt one real entry of a real table: the visible-stamper fused
  // entry gets a second TTL opcode. verify_run_table must localize it.
  const PipelineConfig config = default_config();
  sim::RunTable table = sim::compile_run_table(config);
  const std::size_t index = HopRow::kNumPersonalities + HopRow::kStamps;
  table[index] = sim::run_list_append(table[index], ElementOp::kTtl);
  const verify::TableReport report = verify::verify_run_table(table, config);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_invariant(report.violations, "ttl-monotone"));
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.flags, HopRow::kStamps);
    EXPECT_TRUE(v.has_options);
  }
}

TEST(RroptVerify, FlagsMissingOpcodeAgainstSpec) {
  // Drop the CoPP gate from the rate-limited options entry: the abstract
  // execution is fine (gates are pure) but the double-entry personality
  // spec must notice the missing opcode.
  const PipelineConfig config = default_config();
  sim::RunTable table = sim::compile_run_table(config);
  const std::size_t index =
      HopRow::kNumPersonalities + HopRow::kRateLimited;
  table[index] = pack({ElementOp::kBaseLoss, ElementOp::kSlowPathLoss,
                       ElementOp::kTtl});
  const verify::TableReport report = verify::verify_run_table(table, config);
  EXPECT_TRUE(has_invariant(report.violations, "spec"));
}

TEST(RroptVerify, FlagsUnfusedPairAsPeepholeRegression) {
  // The unfused pair is byte-identical, but losing the fusion on the
  // hottest personality is a perf regression the spec check reports.
  const PipelineConfig config = default_config();
  sim::RunTable table = sim::compile_run_table(config);
  const std::size_t index = HopRow::kNumPersonalities + HopRow::kStamps;
  table[index] = pack({ElementOp::kBaseLoss, ElementOp::kSlowPathLoss,
                       ElementOp::kTtl, ElementOp::kStampTrusted});
  const verify::TableReport report = verify::verify_run_table(table, config);
  EXPECT_TRUE(has_invariant(report.violations, "spec"));
}

// ------------------------------------------------------------- the model

TEST(RroptVerify, GateOpcodesAreVerdictPureByModel) {
  for (const ElementOp op :
       {ElementOp::kBaseLoss, ElementOp::kSlowPathLoss, ElementOp::kStormGate,
        ElementOp::kCoppGate, ElementOp::kTransitFilter,
        ElementOp::kEdgeFilter}) {
    const verify::OpModel* model = verify::op_model(op);
    ASSERT_NE(model, nullptr);
    EXPECT_TRUE(model->gate) << model->name;
    EXPECT_FALSE(model->writes_ttl) << model->name;
    EXPECT_FALSE(model->stamps) << model->name;
    EXPECT_EQ(model->commits, 0) << model->name;
  }
  EXPECT_EQ(verify::op_model(static_cast<ElementOp>(15)), nullptr);
}

TEST(RroptVerify, FusedEntryCommitsOnceForTwoMutations) {
  verify::AbstractHeader post;
  const auto violations =
      verify::verify_list(pack({ElementOp::kTtlStampTrusted}),
                          OptionState::kPresent, default_config(), &post);
  EXPECT_TRUE(violations.empty());
  EXPECT_EQ(post.ttl_decrements, 1);
  EXPECT_EQ(post.rr_advances, 1);
  EXPECT_EQ(post.checksum_commits, 1);
  EXPECT_EQ(post.uncommitted_groups, 0);
}

TEST(RroptVerify, ReportFormatsProofsAndViolations) {
  const PipelineConfig config = default_config();
  sim::RunTable table = sim::compile_run_table(config);
  table[0] = pack({ElementOp::kTtl, ElementOp::kTtl});
  const verify::TableReport report = verify::verify_run_table(table, config);
  const std::string verbose = verify::format_report(report, true);
  EXPECT_NE(verbose.find("[VIOLATED]"), std::string::npos);
  EXPECT_NE(verbose.find("[proved]"), std::string::npos);
  EXPECT_NE(verbose.find("ttl-monotone"), std::string::npos);
  const std::string terse = verify::format_report(report, false);
  EXPECT_EQ(terse.find("[proved]"), std::string::npos);
}

// -------------------------------------------- run_list_append capacity

TEST(RunListAppend, RejectsPastEightOps) {
  PackedRunList list = 0;
  for (int i = 0; i < 8; ++i) {
    list = sim::run_list_append(list, ElementOp::kCoppGate);
  }
  EXPECT_TRUE(sim::run_list_full(list));
  EXPECT_EQ(sim::run_list_size(list), 8u);
#ifdef NDEBUG
  // Release builds reject: the list comes back unchanged instead of the
  // old silent truncation via an undefined 64-bit shift.
  const PackedRunList after = sim::run_list_append(list, ElementOp::kTtl);
  EXPECT_EQ(after, list);
  EXPECT_EQ(sim::run_list_size(after), 8u);
#else
  // Debug builds assert: appending to a full list is a compile bug.
  EXPECT_DEATH((void)sim::run_list_append(list, ElementOp::kTtl),
               "already holds 8 opcodes");
#endif
}

TEST(RunListAppend, FullDetectsExactBoundary) {
  PackedRunList list = 0;
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(sim::run_list_full(list));
    list = sim::run_list_append(list, ElementOp::kBaseLoss);
  }
  EXPECT_FALSE(sim::run_list_full(list));
  list = sim::run_list_append(list, ElementOp::kTtl);
  EXPECT_TRUE(sim::run_list_full(list));
}

}  // namespace
}  // namespace rr
