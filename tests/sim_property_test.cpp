// Failure-injection suites: extreme behaviour assignments must produce the
// exact aggregate outcomes the model promises (everything filters -> no RR
// anywhere; nobody stamps -> empty options; everyone anonymous -> silent
// traceroutes; etc.). These pin down the simulator's causal structure.
#include <gtest/gtest.h>

#include <algorithm>

#include "measure/campaign.h"
#include "measure/testbed.h"
#include "probe/prober.h"

namespace rr::sim {
namespace {

measure::TestbedConfig base_config(std::uint64_t seed = 91) {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = seed;
  return config;
}

/// A behaviour parameter set with every stochastic nuisance disabled:
/// everything responds, nothing filters, drops, hides or rate-limits.
BehaviorParams ideal_behaviors() {
  BehaviorParams p;
  p.host_ping_responsive = {1.0, 1.0, 1.0, 1.0};
  p.as_dark = {0.0, 0.0, 0.0, 0.0};
  p.host_drops_rr = {0.0, 0.0, 0.0, 0.0};
  p.host_strips_rr = {0.0, 0.0, 0.0, 0.0};
  p.host_no_self_stamp = 0.0;
  p.host_stamps_alias = 0.0;
  p.host_responds_udp = 1.0;
  p.as_filters_edge = {0.0, 0.0, 0.0, 0.0};
  p.as_filters_transit = 0.0;
  p.as_never_stamps = 0.0;
  p.as_sometimes_stamps = 0.0;
  p.router_hidden = 0.0;
  p.router_anonymous = 0.0;
  p.router_responds_ping = 1.0;
  p.router_rate_limited = 0.0;
  p.strict_limited_vps = 0;
  p.base_loss = 0.0;
  p.options_extra_loss = 0.0;
  return p;
}

TEST(FailureInjection, IdealWorldAnswersEverything) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);

  const auto& topology = testbed.topology();
  int rr_replies = 0;
  const std::size_t n = std::min<std::size_t>(
      topology.destinations().size(), 300);
  for (std::size_t i = 0; i < n; ++i) {
    const auto target =
        topology.host_at(topology.destinations()[i]).address;
    const auto r = prober.probe(probe::ProbeSpec::ping_rr(target));
    ASSERT_EQ(r.kind, probe::ResponseKind::kEchoReply)
        << "lossless world must answer " << target.to_string();
    ASSERT_TRUE(r.rr_option_in_reply);
    ++rr_replies;
    // With universal stamping the option can only be non-full if the
    // total path was shorter than nine hops.
    if (r.rr_free_slots > 0) {
      EXPECT_LT(r.rr_recorded.size(), 9u);
    }
  }
  EXPECT_EQ(rr_replies, static_cast<int>(n));
}

TEST(FailureInjection, UniversalEdgeFilteringKillsRrButNotPing) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.as_filters_edge = {1.0, 1.0, 1.0, 1.0};
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);

  const auto& topology = testbed.topology();
  for (std::size_t i = 0; i < 100; ++i) {
    const auto target =
        topology.host_at(topology.destinations()[i]).address;
    EXPECT_EQ(prober.probe(probe::ProbeSpec::ping(target)).kind,
              probe::ResponseKind::kEchoReply);
    EXPECT_EQ(prober.probe(probe::ProbeSpec::ping_rr(target)).kind,
              probe::ResponseKind::kNone);
  }
}

TEST(FailureInjection, NobodyStampsMeansEmptyOptions) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.as_never_stamps = 1.0;
  config.behavior_params.host_no_self_stamp = 1.0;
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
  const auto& topology = testbed.topology();
  for (std::size_t i = 0; i < 100; ++i) {
    const auto target =
        topology.host_at(topology.destinations()[i]).address;
    const auto r = prober.probe(probe::ProbeSpec::ping_rr(target));
    ASSERT_EQ(r.kind, probe::ResponseKind::kEchoReply);
    ASSERT_TRUE(r.rr_option_in_reply);  // option copied, just never filled
    EXPECT_TRUE(r.rr_recorded.empty());
    EXPECT_EQ(r.rr_free_slots, 9);
  }
}

TEST(FailureInjection, AnonymousRoutersSilenceTraceroute) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.router_anonymous = 1.0;
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
  const auto& topology = testbed.topology();
  const auto target = topology.host_at(topology.destinations()[4]).address;
  const auto trace = prober.traceroute(target, 25, 1);
  // The destination itself still answers the final echo.
  ASSERT_TRUE(trace.reached);
  for (std::size_t h = 0; h + 1 < trace.hops.size(); ++h) {
    EXPECT_FALSE(trace.hops[h].responded);
  }
}

TEST(FailureInjection, HiddenRoutersShortenTtlDistanceButStillStamp) {
  // With every router hidden, no TTL is ever decremented: a TTL-1 ping-RR
  // sails through and the reply still records the whole path.
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.router_hidden = 1.0;
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
  const auto& topology = testbed.topology();
  const auto target = topology.host_at(topology.destinations()[9]).address;
  probe::ProbeSpec spec = probe::ProbeSpec::ping_rr(target, /*ttl=*/1);
  const auto r = prober.probe(spec);
  ASSERT_EQ(r.kind, probe::ResponseKind::kEchoReply);
  EXPECT_TRUE(r.rr_option_in_reply);
  EXPECT_FALSE(r.rr_recorded.empty());
}

TEST(FailureInjection, StrippingHostsAnswerWithoutTheOption) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.host_strips_rr = {1.0, 1.0, 1.0, 1.0};
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
  const auto& topology = testbed.topology();
  for (std::size_t i = 0; i < 60; ++i) {
    const auto target =
        topology.host_at(topology.destinations()[i]).address;
    const auto r = prober.probe(probe::ProbeSpec::ping_rr(target));
    ASSERT_EQ(r.kind, probe::ResponseKind::kEchoReply);
    EXPECT_FALSE(r.rr_option_in_reply);
  }
}

TEST(FailureInjection, AliasStampersNeverRecordTheProbedAddress) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.host_stamps_alias = 1.0;
  config.topo_params.host_alias_fraction = 1.0;  // every host multi-addressed
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();
  // Scan from every VP: only destinations reached with free slots allow
  // the assertion, and at test scale any single VP sees few of those.
  int checked = 0;
  for (const auto* vp : testbed.vps()) {
    auto prober = testbed.make_prober(vp->host, 1000.0);
    for (std::size_t i = 0;
         i < topology.destinations().size() && checked < 12; i += 3) {
      const topo::HostId dest = topology.destinations()[i];
      const auto target = topology.host_at(dest).address;
      const auto r = prober.probe(probe::ProbeSpec::ping_rr(target));
      ASSERT_EQ(r.kind, probe::ResponseKind::kEchoReply);
      if (!r.rr_option_in_reply || r.rr_recorded.size() >= 9) continue;
      // Arrived with slots free, so the device stamped — but an alias.
      EXPECT_EQ(std::find(r.rr_recorded.begin(), r.rr_recorded.end(),
                          target),
                r.rr_recorded.end());
      const auto& aliases = topology.host_at(dest).aliases;
      const bool alias_present = std::any_of(
          aliases.begin(), aliases.end(), [&](const auto& alias) {
            return std::find(r.rr_recorded.begin(), r.rr_recorded.end(),
                             alias) != r.rr_recorded.end();
          });
      EXPECT_TRUE(alias_present);
      ++checked;
    }
    if (checked >= 12) break;
  }
  EXPECT_GT(checked, 3);
}

TEST(FailureInjection, TtlLimitedProbesAlwaysExpireInIdealWorld) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
  const auto& topology = testbed.topology();
  for (std::size_t i = 0; i < 40; ++i) {
    const auto target =
        topology.host_at(topology.destinations()[i]).address;
    const auto r =
        prober.probe(probe::ProbeSpec::ping_rr(target, /*ttl=*/1));
    // Either the error comes back (normal) or the destination is one hop
    // away (impossible here: hosts hang below at least one router).
    ASSERT_EQ(r.kind, probe::ResponseKind::kTtlExceeded);
    EXPECT_TRUE(r.quoted_rr_present);
    EXPECT_TRUE(r.quoted_rr.empty());  // expired before the first stamp
    EXPECT_EQ(r.quoted_rr_free_slots, 9);
  }
}

TEST(FailureInjection, CampaignUnderIdealBehaviorIsFullyResponsive) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  measure::Testbed testbed{config};
  measure::CampaignConfig campaign_config;
  campaign_config.destination_stride = 4;  // keep the test fast
  const auto campaign = measure::Campaign::run(testbed, campaign_config);
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    EXPECT_TRUE(campaign.ping_responsive(d));
    EXPECT_TRUE(campaign.rr_responsive(d));
  }
}

TEST(FailureInjection, LossOnlyWorldDegradesGracefully) {
  auto config = base_config();
  config.behavior_params = ideal_behaviors();
  config.behavior_params.base_loss = 0.05;  // brutal 5% per hop
  measure::Testbed testbed{config};
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
  const auto& topology = testbed.topology();
  int answered = 0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    const auto target = topology
                            .host_at(topology.destinations()[
                                static_cast<std::size_t>(i) %
                                topology.destinations().size()])
                            .address;
    if (prober.probe(probe::ProbeSpec::ping(target)).responded()) {
      ++answered;
    }
  }
  EXPECT_GT(answered, probes / 4);  // not dead
  EXPECT_LT(answered, probes);     // but visibly lossy
}

}  // namespace
}  // namespace rr::sim
