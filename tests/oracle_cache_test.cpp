// Oracle cache behaviour and stitcher buffer reuse under churn.
#include <gtest/gtest.h>

#include "routing/oracle.h"
#include "routing/stitcher.h"
#include "topology/generator.h"

namespace rr::route {
namespace {

class OracleCache : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = topo::generate_test_topology(61);
    oracle_ = std::make_unique<RoutingOracle>(topo_, topo::Epoch::k2016,
                                              std::vector<AsId>{0, 1});
  }
  std::shared_ptr<const topo::Topology> topo_;
  std::unique_ptr<RoutingOracle> oracle_;
};

TEST_F(OracleCache, FallbackAnswersStayCorrectUnderEviction) {
  // Query far more distinct fallback destinations than the cache holds;
  // answers must stay identical to fresh computations.
  BgpEngine engine{topo_, topo::Epoch::k2016};
  const std::size_t n = topo_->ases().size();
  for (int round = 0; round < 2; ++round) {
    for (AsId dst = 2; dst < n; dst += 1) {
      const auto got = oracle_->as_path(dst % 7 + 2, dst);
      const auto want =
          engine.compute_tree(dst).as_path_from(dst % 7 + 2);
      ASSERT_EQ(got, want) << "dst " << dst << " round " << round;
    }
  }
}

TEST_F(OracleCache, ReachableAgreesWithPathEmptiness) {
  for (AsId src = 0; src < topo_->ases().size(); src += 9) {
    for (AsId dst = 0; dst < topo_->ases().size(); dst += 13) {
      EXPECT_EQ(oracle_->reachable(src, dst),
                src == dst || !oracle_->as_path(src, dst).empty());
    }
  }
}

TEST_F(OracleCache, SelfPathIsSingleton) {
  for (AsId as = 0; as < topo_->ases().size(); as += 17) {
    EXPECT_EQ(oracle_->as_path(as, as), std::vector<AsId>{as});
  }
}

TEST_F(OracleCache, StitcherScratchReuseIsSafe) {
  // Interleave the three stitching entry points through one stitcher; the
  // shared scratch buffer must never corrupt results.
  PathStitcher stitcher{topo_, *oracle_};
  const auto vps = topo_->vantage_points();
  ASSERT_GE(vps.size(), 2u);
  const topo::HostId a = vps[0].host;
  const topo::HostId b = vps[1].host;
  const topo::HostId dest = topo_->destinations()[5];

  std::vector<PathHop> first, again;
  ASSERT_TRUE(stitcher.host_path(a, dest, first));
  std::vector<PathHop> other;
  (void)stitcher.host_path(b, dest, other);
  std::vector<PathHop> router_out;
  (void)stitcher.router_path(first.back().router, a, router_out);
  ASSERT_TRUE(stitcher.host_path(a, dest, again));
  ASSERT_EQ(first.size(), again.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].router, again[i].router);
    EXPECT_EQ(first[i].egress, again[i].egress);
  }
}

}  // namespace
}  // namespace rr::route
