// Generator properties across seeds and scales: structural invariants that
// must hold for ANY generated world, not just the fixture seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "topology/generator.h"

namespace rr::topo {
namespace {

class GeneratedWorld : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { topo_ = generate_test_topology(GetParam()); }
  std::shared_ptr<const Topology> topo_;
};

TEST_P(GeneratedWorld, ProviderGraphIsAcyclic) {
  // Kahn's algorithm over customer->provider edges: a cycle would make
  // route propagation ill-defined.
  const std::size_t n = topo_->ases().size();
  std::vector<int> out_degree(n, 0);  // providers per AS
  std::vector<std::vector<AsId>> customers(n);
  for (const auto& link : topo_->links()) {
    if (link.kind != LinkKind::kCustomerProvider) continue;
    ++out_degree[link.a];
    customers[link.b].push_back(link.a);
  }
  std::queue<AsId> ready;
  for (AsId as = 0; as < n; ++as) {
    if (out_degree[as] == 0) ready.push(as);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const AsId top = ready.front();
    ready.pop();
    ++processed;
    for (AsId customer : customers[top]) {
      if (--out_degree[customer] == 0) ready.push(customer);
    }
  }
  EXPECT_EQ(processed, n) << "customer/provider cycle detected";
}

TEST_P(GeneratedWorld, EveryRouterHasItsLoopbackFirst) {
  for (RouterId id = 0; id < topo_->routers().size(); ++id) {
    const auto& router = topo_->router_at(id);
    ASSERT_FALSE(router.interfaces.empty());
    EXPECT_EQ(router.interfaces.front(), router.loopback);
  }
}

TEST_P(GeneratedWorld, HostAddressesLiveInTheirPrefix) {
  for (const HostId id : topo_->destinations()) {
    const auto& host = topo_->host_at(id);
    EXPECT_TRUE(host.prefix.contains(host.address));
    for (const auto& alias : host.aliases) {
      EXPECT_TRUE(host.prefix.contains(alias));
    }
  }
}

TEST_P(GeneratedWorld, AccessChainsStayInsideTheirAs) {
  for (const HostId id : topo_->destinations()) {
    const auto& host = topo_->host_at(id);
    for (const RouterId router : topo_->access_chain(host.access_router)) {
      EXPECT_EQ(topo_->router_at(router).as_id, host.as_id);
    }
  }
}

TEST_P(GeneratedWorld, PrefixBlocksNeverOverlap) {
  // Every destination /24 and infra chunk maps to exactly one AS via LPM;
  // sampling addresses across blocks must agree with host ownership.
  for (std::size_t i = 0; i < topo_->destinations().size(); i += 11) {
    const auto& host = topo_->host_at(topo_->destinations()[i]);
    for (const std::uint64_t offset : {0ULL, 1ULL, 128ULL, 255ULL}) {
      const auto as = topo_->as_of_address(host.prefix.address_at(offset));
      ASSERT_TRUE(as.has_value());
      EXPECT_EQ(*as, host.as_id);
    }
  }
}

TEST_P(GeneratedWorld, VantagePointsHaveDistinctHostsAndSites) {
  std::unordered_set<HostId> hosts;
  std::unordered_set<std::string> sites;
  for (const auto& vp : topo_->vantage_points()) {
    EXPECT_TRUE(hosts.insert(vp.host).second);
    EXPECT_TRUE(sites.insert(vp.site).second);
    EXPECT_TRUE(vp.exists_in_2011 || vp.exists_in_2016);
  }
}

TEST_P(GeneratedWorld, MlabSitsShallowerThanPlanetLab) {
  // Averaged over sites, M-Lab hosts hang closer to their AS core than
  // PlanetLab campus hosts — the placement asymmetry behind Figure 1.
  double mlab_depth = 0, plab_depth = 0;
  int mlab = 0, plab = 0;
  for (const auto& vp : topo_->vantage_points()) {
    const auto& host = topo_->host_at(vp.host);
    const auto chain = topo_->access_chain(host.access_router);
    const double depth = static_cast<double>(chain.size());
    if (vp.platform == Platform::kMLab) {
      mlab_depth += depth;
      ++mlab;
    } else if (vp.platform == Platform::kPlanetLab) {
      plab_depth += depth;
      ++plab;
    }
  }
  ASSERT_GT(mlab, 0);
  ASSERT_GT(plab, 0);
  EXPECT_LT(mlab_depth / mlab, plab_depth / plab);
}

TEST_P(GeneratedWorld, StubBorderIsItsCoreRouter) {
  for (const auto& link : topo_->links()) {
    for (const auto& [as, router] :
         {std::pair{link.a, link.router_a}, std::pair{link.b, link.router_b}}) {
      const auto& info = topo_->as_at(as);
      if (info.tier == AsTier::kStub) {
        EXPECT_EQ(router, info.core.front());
      } else {
        // Transit ASes terminate every link on a dedicated border.
        EXPECT_TRUE(topo_->router_at(router).is_border);
      }
    }
  }
}

TEST_P(GeneratedWorld, CloudsPeerFarMoreThanOrdinaryContent) {
  double cloud_links = 0, content_links = 0;
  int clouds = 0, contents = 0;
  for (const auto& as : topo_->ases()) {
    if (as.cloud) {
      cloud_links += static_cast<double>(as.links.size());
      ++clouds;
    } else if (as.type == AsType::kContent && as.tier == AsTier::kStub) {
      content_links += static_cast<double>(as.links.size());
      ++contents;
    }
  }
  ASSERT_GT(clouds, 0);
  ASSERT_GT(contents, 0);
  EXPECT_GT(cloud_links / clouds, 3.0 * content_links / contents);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedWorld,
                         ::testing::Values(1, 2, 3, 42, 20160924));

// ------------------------------------------------- thread-count identity

std::uint64_t fnv(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv_str(std::uint64_t hash, const std::string& s) {
  hash = fnv(hash, s.size());
  for (const char c : s) hash = fnv(hash, static_cast<std::uint8_t>(c));
  return hash;
}

/// Hashes every observable structure of a generated world, including the
/// compiled forwarding plane (flat LPM answers, alias arena views, the
/// address index): if any byte of the generation or freeze depended on the
/// worker count, some field below would differ.
std::uint64_t world_fingerprint(const Topology& topo) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& as : topo.ases()) {
    h = fnv(h, as.asn);
    h = fnv(h, static_cast<std::uint64_t>(as.type));
    h = fnv(h, static_cast<std::uint64_t>(as.tier));
    h = fnv(h, as.depth);
    h = fnv(h, (std::uint64_t{as.colo_presence} << 1) | as.cloud);
    h = fnv(h, as.internal_hops);
    for (const LinkId link : as.links) h = fnv(h, link);
    for (const RouterId r : as.routers) h = fnv(h, r);
    for (const RouterId r : as.core) h = fnv(h, r);
    for (const HostId host : as.hosts) h = fnv(h, host);
    h = fnv(h, as.infra_prefix.base().value());
    h = fnv(h, as.infra_prefix.length());
  }
  for (const auto& router : topo.routers()) {
    h = fnv(h, router.as_id);
    h = fnv(h, router.loopback.value());
    h = fnv(h, router.is_border);
    for (const auto addr : router.interfaces) h = fnv(h, addr.value());
    // Compiled services must agree with the structures: device ownership
    // and the ground-truth alias view of the loopback.
    const auto owner = topo.owner_of(router.loopback);
    h = fnv(h, owner ? static_cast<std::uint64_t>(owner->kind) + 1 : 0);
    h = fnv(h, owner ? owner->id : kNoRouter);
    for (const auto addr : topo.aliases_of(router.loopback)) {
      h = fnv(h, addr.value());
    }
  }
  for (const auto& host : topo.hosts()) {
    h = fnv(h, host.as_id);
    h = fnv(h, host.access_router);
    h = fnv(h, host.address.value());
    h = fnv(h, host.prefix.base().value());
    h = fnv(h, host.prefix.length());
    for (const auto addr : host.aliases) h = fnv(h, addr.value());
    for (const auto addr : topo.aliases_of(host.address)) {
      h = fnv(h, addr.value());
    }
    const auto as = topo.as_of_address(host.address);
    h = fnv(h, as ? std::uint64_t{*as} + 1 : 0);
    for (const RouterId r : topo.access_chain(host.access_router)) {
      h = fnv(h, r);
    }
  }
  for (const auto& link : topo.links()) {
    h = fnv(h, link.a);
    h = fnv(h, link.b);
    h = fnv(h, static_cast<std::uint64_t>(link.kind));
    h = fnv(h, link.exists_in_2011);
    h = fnv(h, link.router_a);
    h = fnv(h, link.router_b);
    h = fnv(h, link.addr_a.value());
    h = fnv(h, link.addr_b.value());
  }
  for (const auto& vp : topo.vantage_points()) {
    h = fnv(h, vp.host);
    h = fnv(h, static_cast<std::uint64_t>(vp.platform));
    h = fnv_str(h, vp.site);
    h = fnv(h, (std::uint64_t{vp.exists_in_2011} << 1) | vp.exists_in_2016);
  }
  for (const Epoch epoch : {Epoch::k2011, Epoch::k2016}) {
    for (const auto* vp : topo.vantage_points_in(epoch)) {
      h = fnv(h, vp->host);
    }
  }
  for (const auto& cloud : topo.clouds()) {
    h = fnv_str(h, cloud.name);
    h = fnv(h, cloud.as_id);
    h = fnv(h, cloud.probe_host);
  }
  for (const HostId dest : topo.destinations()) h = fnv(h, dest);
  h = fnv(h, topo.probe_host());
  return h;
}

// The tentpole contract of the parallel world build: generation and the
// compile() freeze are bit-identical at every worker-thread count. A
// failure here means some materialize/compile shard leaked its schedule
// into the output.
TEST(GeneratorThreads, WorldBitIdenticalAcrossThreadCounts) {
  std::uint64_t reference = 0;
  bool have_reference = false;
  for (const int threads : {1, 2, 8}) {
    TopologyParams params = TopologyParams::test_scale();
    params.seed = 20160924;
    params.threads = threads;
    Generator generator{params};
    const auto topo = generator.generate();
    const std::uint64_t fingerprint = world_fingerprint(*topo);
    if (!have_reference) {
      reference = fingerprint;
      have_reference = true;
    } else {
      EXPECT_EQ(reference, fingerprint)
          << "world differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace rr::topo
