// Generator properties across seeds and scales: structural invariants that
// must hold for ANY generated world, not just the fixture seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "topology/generator.h"

namespace rr::topo {
namespace {

class GeneratedWorld : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { topo_ = generate_test_topology(GetParam()); }
  std::shared_ptr<const Topology> topo_;
};

TEST_P(GeneratedWorld, ProviderGraphIsAcyclic) {
  // Kahn's algorithm over customer->provider edges: a cycle would make
  // route propagation ill-defined.
  const std::size_t n = topo_->ases().size();
  std::vector<int> out_degree(n, 0);  // providers per AS
  std::vector<std::vector<AsId>> customers(n);
  for (const auto& link : topo_->links()) {
    if (link.kind != LinkKind::kCustomerProvider) continue;
    ++out_degree[link.a];
    customers[link.b].push_back(link.a);
  }
  std::queue<AsId> ready;
  for (AsId as = 0; as < n; ++as) {
    if (out_degree[as] == 0) ready.push(as);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const AsId top = ready.front();
    ready.pop();
    ++processed;
    for (AsId customer : customers[top]) {
      if (--out_degree[customer] == 0) ready.push(customer);
    }
  }
  EXPECT_EQ(processed, n) << "customer/provider cycle detected";
}

TEST_P(GeneratedWorld, EveryRouterHasItsLoopbackFirst) {
  for (RouterId id = 0; id < topo_->routers().size(); ++id) {
    const auto& router = topo_->router_at(id);
    ASSERT_FALSE(router.interfaces.empty());
    EXPECT_EQ(router.interfaces.front(), router.loopback);
  }
}

TEST_P(GeneratedWorld, HostAddressesLiveInTheirPrefix) {
  for (const HostId id : topo_->destinations()) {
    const auto& host = topo_->host_at(id);
    EXPECT_TRUE(host.prefix.contains(host.address));
    for (const auto& alias : host.aliases) {
      EXPECT_TRUE(host.prefix.contains(alias));
    }
  }
}

TEST_P(GeneratedWorld, AccessChainsStayInsideTheirAs) {
  for (const HostId id : topo_->destinations()) {
    const auto& host = topo_->host_at(id);
    for (const RouterId router : topo_->access_chain(host.access_router)) {
      EXPECT_EQ(topo_->router_at(router).as_id, host.as_id);
    }
  }
}

TEST_P(GeneratedWorld, PrefixBlocksNeverOverlap) {
  // Every destination /24 and infra chunk maps to exactly one AS via LPM;
  // sampling addresses across blocks must agree with host ownership.
  for (std::size_t i = 0; i < topo_->destinations().size(); i += 11) {
    const auto& host = topo_->host_at(topo_->destinations()[i]);
    for (const std::uint64_t offset : {0ULL, 1ULL, 128ULL, 255ULL}) {
      const auto as = topo_->as_of_address(host.prefix.address_at(offset));
      ASSERT_TRUE(as.has_value());
      EXPECT_EQ(*as, host.as_id);
    }
  }
}

TEST_P(GeneratedWorld, VantagePointsHaveDistinctHostsAndSites) {
  std::unordered_set<HostId> hosts;
  std::unordered_set<std::string> sites;
  for (const auto& vp : topo_->vantage_points()) {
    EXPECT_TRUE(hosts.insert(vp.host).second);
    EXPECT_TRUE(sites.insert(vp.site).second);
    EXPECT_TRUE(vp.exists_in_2011 || vp.exists_in_2016);
  }
}

TEST_P(GeneratedWorld, MlabSitsShallowerThanPlanetLab) {
  // Averaged over sites, M-Lab hosts hang closer to their AS core than
  // PlanetLab campus hosts — the placement asymmetry behind Figure 1.
  double mlab_depth = 0, plab_depth = 0;
  int mlab = 0, plab = 0;
  for (const auto& vp : topo_->vantage_points()) {
    const auto& host = topo_->host_at(vp.host);
    const auto chain = topo_->access_chain(host.access_router);
    const double depth = static_cast<double>(chain.size());
    if (vp.platform == Platform::kMLab) {
      mlab_depth += depth;
      ++mlab;
    } else if (vp.platform == Platform::kPlanetLab) {
      plab_depth += depth;
      ++plab;
    }
  }
  ASSERT_GT(mlab, 0);
  ASSERT_GT(plab, 0);
  EXPECT_LT(mlab_depth / mlab, plab_depth / plab);
}

TEST_P(GeneratedWorld, StubBorderIsItsCoreRouter) {
  for (const auto& link : topo_->links()) {
    for (const auto& [as, router] :
         {std::pair{link.a, link.router_a}, std::pair{link.b, link.router_b}}) {
      const auto& info = topo_->as_at(as);
      if (info.tier == AsTier::kStub) {
        EXPECT_EQ(router, info.core.front());
      } else {
        // Transit ASes terminate every link on a dedicated border.
        EXPECT_TRUE(topo_->router_at(router).is_border);
      }
    }
  }
}

TEST_P(GeneratedWorld, CloudsPeerFarMoreThanOrdinaryContent) {
  double cloud_links = 0, content_links = 0;
  int clouds = 0, contents = 0;
  for (const auto& as : topo_->ases()) {
    if (as.cloud) {
      cloud_links += static_cast<double>(as.links.size());
      ++clouds;
    } else if (as.type == AsType::kContent && as.tier == AsTier::kStub) {
      content_links += static_cast<double>(as.links.size());
      ++contents;
    }
  }
  ASSERT_GT(clouds, 0);
  ASSERT_GT(contents, 0);
  EXPECT_GT(cloud_links / clouds, 3.0 * content_links / contents);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedWorld,
                         ::testing::Values(1, 2, 3, 42, 20160924));

}  // namespace
}  // namespace rr::topo
