// Generator invariants: the produced Internet must be structurally sound
// before any routing or probing happens on top of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <unordered_set>

#include "topology/generator.h"

namespace rr::topo {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = generate_test_topology(7).get();
    owner_ = generate_test_topology(7);
  }
  static const Topology* topo_;
  static std::shared_ptr<const Topology> owner_;
};

const Topology* TopologyTest::topo_ = nullptr;
std::shared_ptr<const Topology> TopologyTest::owner_;

TEST_F(TopologyTest, GenerationIsDeterministic) {
  const auto again = generate_test_topology(7);
  EXPECT_EQ(again->summary(), owner_->summary());
  ASSERT_EQ(again->hosts().size(), owner_->hosts().size());
  for (std::size_t i = 0; i < again->hosts().size(); i += 37) {
    EXPECT_EQ(again->hosts()[i].address, owner_->hosts()[i].address);
  }
}

TEST_F(TopologyTest, DifferentSeedsDiffer) {
  const auto other = generate_test_topology(8);
  bool any_diff = other->hosts().size() != owner_->hosts().size();
  for (std::size_t i = 0; !any_diff && i < other->hosts().size() &&
                          i < owner_->hosts().size();
       ++i) {
    any_diff = other->hosts()[i].address != owner_->hosts()[i].address;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(TopologyTest, EveryAsHasAtLeastOnePrefixAndCoreRouter) {
  for (const auto& as : owner_->ases()) {
    EXPECT_FALSE(as.core.empty());
    EXPECT_FALSE(as.hosts.empty());
  }
}

TEST_F(TopologyTest, TierDepthsAreConsistent) {
  int tier1 = 0;
  for (const auto& as : owner_->ases()) {
    if (as.tier == AsTier::kTier1) {
      ++tier1;
      EXPECT_EQ(as.depth, 1);
    }
    if (as.tier == AsTier::kStub && !as.cloud) {
      EXPECT_GE(as.depth, 2);
    }
  }
  EXPECT_EQ(tier1, TopologyParams::test_scale().num_tier1);
}

TEST_F(TopologyTest, NonTier1AsesHaveProviders) {
  for (AsId id = 0; id < owner_->ases().size(); ++id) {
    const auto& as = owner_->as_at(id);
    if (as.tier == AsTier::kTier1) continue;
    bool has_upward_provider = false;
    for (LinkId link_id : as.links) {
      const auto& link = owner_->link_at(link_id);
      if (link.kind == LinkKind::kCustomerProvider && link.a == id &&
          owner_->as_at(link.b).depth < as.depth) {
        has_upward_provider = true;
      }
    }
    // Multihoming may add lateral providers, but at least one provider
    // must sit strictly higher, so customer routes reach the core.
    EXPECT_TRUE(has_upward_provider) << "AS " << id << " has no uplink";
  }
}

TEST_F(TopologyTest, LinksAreUniquePerAsPairAndIndexed) {
  std::set<std::pair<AsId, AsId>> seen;
  for (LinkId id = 0; id < owner_->links().size(); ++id) {
    const auto& link = owner_->link_at(id);
    const auto key = std::minmax(link.a, link.b);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate link";
    const auto found = owner_->link_between(link.a, link.b);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, id);
    EXPECT_EQ(owner_->link_between(link.b, link.a), found);
  }
}

TEST_F(TopologyTest, LinkRoutersBelongToTheRightAs) {
  for (const auto& link : owner_->links()) {
    EXPECT_EQ(owner_->router_at(link.router_a).as_id, link.a);
    EXPECT_EQ(owner_->router_at(link.router_b).as_id, link.b);
    EXPECT_NE(link.addr_a, link.addr_b);
  }
}

TEST_F(TopologyTest, AllAssignedAddressesAreUniqueAndOwned) {
  std::unordered_set<std::uint32_t> seen;
  for (RouterId id = 0; id < owner_->routers().size(); ++id) {
    for (const auto& addr : owner_->router_at(id).interfaces) {
      EXPECT_TRUE(seen.insert(addr.value()).second)
          << "duplicate address " << addr.to_string();
      const auto owner = owner_->owner_of(addr);
      ASSERT_TRUE(owner.has_value());
      EXPECT_EQ(owner->kind, AddressOwner::Kind::kRouter);
      EXPECT_EQ(owner->id, id);
    }
  }
  for (HostId id = 0; id < owner_->hosts().size(); ++id) {
    const auto& host = owner_->host_at(id);
    EXPECT_TRUE(seen.insert(host.address.value()).second);
    for (const auto& alias : host.aliases) {
      EXPECT_TRUE(seen.insert(alias.value()).second);
    }
  }
}

TEST_F(TopologyTest, AddressToAsMappingCoversInfraAndHosts) {
  for (const auto& link : owner_->links()) {
    EXPECT_EQ(owner_->as_of_address(link.addr_a), link.a);
    EXPECT_EQ(owner_->as_of_address(link.addr_b), link.b);
  }
  for (const HostId id : owner_->destinations()) {
    const auto& host = owner_->host_at(id);
    EXPECT_EQ(owner_->as_of_address(host.address), host.as_id);
  }
}

TEST_F(TopologyTest, AliasGroundTruthIsSymmetric) {
  for (RouterId id = 0; id < owner_->routers().size(); id += 7) {
    const auto& router = owner_->router_at(id);
    if (router.interfaces.size() < 2) continue;
    const auto set_a = owner_->aliases_of(router.interfaces[0]);
    const auto set_b = owner_->aliases_of(router.interfaces[1]);
    EXPECT_TRUE(std::equal(set_a.begin(), set_a.end(), set_b.begin(),
                           set_b.end()));
    EXPECT_GE(set_a.size(), 2u);
  }
}

TEST_F(TopologyTest, DestinationsHaveAccessChains) {
  for (const HostId id : owner_->destinations()) {
    const auto& host = owner_->host_at(id);
    const auto chain = owner_->access_chain(host.access_router);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back(), host.access_router);
    // Chain head hangs off a core router of the same AS.
    const auto& as = owner_->as_at(host.as_id);
    EXPECT_NE(std::find(as.core.begin(), as.core.end(), chain.front()),
              as.core.end());
  }
}

TEST_F(TopologyTest, VantagePointCountsMatchParams) {
  const auto params = TopologyParams::test_scale();
  int mlab2016 = 0, plab2016 = 0, mlab2011 = 0, plab2011 = 0;
  for (const auto& vp : owner_->vantage_points()) {
    if (vp.platform == Platform::kMLab) {
      if (vp.exists_in_2016) ++mlab2016;
      if (vp.exists_in_2011) ++mlab2011;
    }
    if (vp.platform == Platform::kPlanetLab) {
      if (vp.exists_in_2016) ++plab2016;
      if (vp.exists_in_2011) ++plab2011;
    }
  }
  EXPECT_EQ(mlab2016, params.mlab_sites_2016);
  EXPECT_EQ(plab2016, params.planetlab_sites_2016);
  EXPECT_EQ(mlab2011, params.mlab_sites_2011);
  EXPECT_EQ(plab2011, params.planetlab_sites_2011);
}

TEST_F(TopologyTest, CloudProvidersExistAndAreFlat) {
  const auto params = TopologyParams::test_scale();
  ASSERT_EQ(owner_->clouds().size(),
            static_cast<std::size_t>(params.num_cloud_providers));
  for (const auto& cloud : owner_->clouds()) {
    const auto& as = owner_->as_at(cloud.as_id);
    EXPECT_TRUE(as.cloud);
    EXPECT_NE(cloud.probe_host, kNoHost);
    // Broad peering: clouds should have many more links than a stub.
    EXPECT_GT(as.links.size(), 3u);
  }
}

TEST_F(TopologyTest, ProbeHostExists) {
  ASSERT_NE(owner_->probe_host(), kNoHost);
  const auto& host = owner_->host_at(owner_->probe_host());
  EXPECT_FALSE(owner_->access_chain(host.access_router).empty());
}

TEST_F(TopologyTest, PeeringGrowsBetweenEpochs) {
  std::size_t links2011 = 0, links2016 = 0;
  for (const auto& link : owner_->links()) {
    if (link.exists_in(Epoch::k2011)) ++links2011;
    if (link.exists_in(Epoch::k2016)) ++links2016;
  }
  EXPECT_EQ(links2016, owner_->links().size());
  EXPECT_LT(links2011, links2016);  // the flattening
}

TEST(TopologyScale, PaperScaleShapeMatchesTable1) {
  // Generate at a reduced paper-like scale and verify the per-type AS mix
  // and prefix means are near Table 1's.
  TopologyParams params = TopologyParams::paper_scale();
  params.num_ases = 1000;
  params.planetlab_sites_2011 = 40;
  const auto topo = Generator{params}.generate();

  std::array<int, kNumAsTypes> as_count{};
  std::array<int, kNumAsTypes> prefix_count{};
  for (const auto& as : topo->ases()) {
    ++as_count[static_cast<std::size_t>(as.type)];
    prefix_count[static_cast<std::size_t>(as.type)] +=
        static_cast<int>(as.hosts.size());
  }
  EXPECT_NEAR(as_count[0] / 1000.0, 0.383, 0.03);
  EXPECT_NEAR(as_count[1] / 1000.0, 0.480, 0.03);
  // Mean prefixes per AS: transit/access ~19.6, enterprise ~2.5.
  EXPECT_NEAR(prefix_count[0] / static_cast<double>(as_count[0]), 19.6, 5.0);
  EXPECT_NEAR(prefix_count[1] / static_cast<double>(as_count[1]), 2.5, 1.0);
}

}  // namespace
}  // namespace rr::topo
