// Edge cases across modules: empty sets, strides, reset semantics,
// determinism guarantees the toolkit promises in its documentation.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/reachability.h"
#include "measure/testbed.h"
#include "packet/datagram.h"

namespace rr {
namespace {

measure::TestbedConfig tiny_config(std::uint64_t seed) {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = seed;
  return config;
}

TEST(NetworkReset, IdenticalTrafficReplaysIdentically) {
  auto config = tiny_config(1212);
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();
  const topo::HostId src = testbed.vps().front()->host;

  auto run_once = [&]() {
    testbed.network().reset();
    std::vector<int> outcomes;
    for (std::size_t i = 0; i < 200; ++i) {
      const auto probe = pkt::make_ping(
          topology.host_at(src).address,
          topology.host_at(topology.destinations()[i]).address,
          7, static_cast<std::uint16_t>(i), 64, 9);
      const auto delivery =
          testbed.network().send(src, *probe.serialize(), i * 0.05);
      outcomes.push_back(delivery ? static_cast<int>(delivery->bytes.size())
                                  : -1);
    }
    return outcomes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(NetworkCounters, ResetClearsEverything) {
  auto config = tiny_config(77);
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();
  const topo::HostId src = testbed.vps().front()->host;
  const auto probe = pkt::make_ping(
      topology.host_at(src).address,
      topology.host_at(topology.destinations()[0]).address, 7, 1, 64, 9);
  (void)testbed.network().send(src, *probe.serialize(), 0.0);
  EXPECT_GT(testbed.network().counters().sent, 0u);
  testbed.network().reset();
  EXPECT_EQ(testbed.network().counters().sent, 0u);
  EXPECT_EQ(testbed.network().counters().responses, 0u);
}

TEST(CampaignStride, SubsamplesDeterministically) {
  auto config = tiny_config(909);
  measure::Testbed testbed{config};
  measure::CampaignConfig full_config;
  measure::CampaignConfig strided_config;
  strided_config.destination_stride = 3;
  const auto strided = measure::Campaign::run(testbed, strided_config);
  const std::size_t all =
      testbed.topology().destinations().size();
  EXPECT_EQ(strided.num_destinations(), (all + 2) / 3);
  // Destination k of the strided campaign is destination 3k of the world.
  for (std::size_t d = 0; d < strided.num_destinations(); d += 7) {
    EXPECT_EQ(strided.destinations()[d],
              testbed.topology().destinations()[3 * d]);
  }
}

TEST(Reachability, EmptySetsAreHandled) {
  auto config = tiny_config(31);
  measure::Testbed testbed{config};
  measure::CampaignConfig campaign_config;
  campaign_config.destination_stride = 5;
  const auto campaign = measure::Campaign::run(testbed, campaign_config);

  const std::vector<std::size_t> no_vps;
  const std::vector<std::size_t> no_dests;
  EXPECT_DOUBLE_EQ(
      measure::fraction_within(campaign, no_vps,
                               campaign.rr_responsive_indices(), 9), 0.0);
  EXPECT_DOUBLE_EQ(measure::fraction_within(campaign, {0}, no_dests, 9),
                   0.0);
  const auto cdf =
      measure::closest_vp_distance_cdf(campaign, no_vps, no_dests);
  EXPECT_TRUE(cdf.empty());
  const auto greedy =
      measure::greedy_vp_selection(campaign, no_vps, no_dests, 5);
  EXPECT_TRUE(greedy.chosen_vps.empty());
}

TEST(Classify, ThresholdEdges) {
  auto config = tiny_config(31);
  measure::Testbed testbed{config};
  measure::CampaignConfig campaign_config;
  campaign_config.destination_stride = 5;
  const auto campaign = measure::Campaign::run(testbed, campaign_config);
  // Nobody can answer more VPs than exist.
  EXPECT_DOUBLE_EQ(measure::fraction_answering_more_than(
                       campaign, static_cast<int>(campaign.num_vps())),
                   0.0);
  // Everyone RR-responsive answers more than zero VPs... minus one.
  EXPECT_DOUBLE_EQ(measure::fraction_answering_more_than(campaign, 0), 1.0);
}

TEST(Dataset, EmptyCampaignRoundTrips) {
  data::CampaignDataset dataset;
  dataset.description = "empty";
  const auto bytes = dataset.serialize();
  const auto parsed = data::CampaignDataset::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, dataset);
  EXPECT_EQ(parsed->num_vps(), 0u);
  const auto table = parsed->response_table();
  EXPECT_EQ(table.by_ip[0].probed, 0u);
}

TEST(Campaign, MinDistanceOverEmptySubsetIsZero) {
  auto config = tiny_config(31);
  measure::Testbed testbed{config};
  measure::CampaignConfig campaign_config;
  campaign_config.destination_stride = 10;
  const auto campaign = measure::Campaign::run(testbed, campaign_config);
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    EXPECT_EQ(campaign.min_rr_distance(d, {}), 0);
  }
}

}  // namespace
}  // namespace rr
