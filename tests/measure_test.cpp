// The measurement library end to end on a small world: campaign,
// classification, reachability, alias resolution, reclassification, the
// AS-stamping audit, rate limiting and the TTL study.
#include <gtest/gtest.h>

#include <algorithm>

#include "measure/as_stamping.h"
#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/cloud.h"
#include "measure/midar.h"
#include "measure/ratelimit.h"
#include "measure/reachability.h"
#include "measure/figures.h"
#include "measure/reclassify.h"
#include "measure/testbed.h"
#include "measure/ttl_study.h"
#include "sim/fault.h"

namespace rr::measure {
namespace {

class MeasureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 5;
    testbed_ = new Testbed{config};
    campaign_ = new Campaign{Campaign::run(*testbed_)};
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete testbed_;
    campaign_ = nullptr;
    testbed_ = nullptr;
  }

  static Testbed* testbed_;
  static Campaign* campaign_;
};

Testbed* MeasureTest::testbed_ = nullptr;
Campaign* MeasureTest::campaign_ = nullptr;

TEST_F(MeasureTest, CampaignCoversAllDestinations) {
  EXPECT_EQ(campaign_->num_destinations(),
            testbed_->topology().destinations().size());
  EXPECT_EQ(campaign_->num_vps(), testbed_->vps().size());
}

TEST_F(MeasureTest, ResponseRatesAreInPlausibleBands) {
  const auto table = build_response_table(*campaign_);
  const auto& total = table.by_ip[0];
  EXPECT_EQ(total.probed, campaign_->num_destinations());
  // Paper: 77% ping-responsive, 58% RR-responsive, ratio 75%. Small-world
  // bands are loose but must carry the same story.
  EXPECT_GT(total.ping_rate(), 0.60);
  EXPECT_LT(total.ping_rate(), 0.92);
  EXPECT_GT(total.rr_over_ping(), 0.55);
  EXPECT_LT(total.rr_over_ping(), 0.92);
  EXPECT_LT(total.rr_responsive, total.ping_responsive);
}

TEST_F(MeasureTest, ByAsCountsAreConsistent) {
  const auto table = build_response_table(*campaign_);
  // Sum of per-type rows equals the total row.
  std::uint64_t ip_sum = 0, as_sum = 0;
  for (int t = 1; t <= topo::kNumAsTypes; ++t) {
    ip_sum += table.by_ip[static_cast<std::size_t>(t)].probed;
    as_sum += table.by_as[static_cast<std::size_t>(t)].probed;
  }
  EXPECT_EQ(ip_sum, table.by_ip[0].probed);
  EXPECT_EQ(as_sum, table.by_as[0].probed);
  // AS-level rates exceed IP-level rates (one responsive host suffices).
  EXPECT_GE(table.by_as[0].ping_rate(), table.by_ip[0].ping_rate());
  EXPECT_GE(table.by_as[0].rr_rate(), table.by_ip[0].rr_rate());
}

TEST_F(MeasureTest, RrObservationInvariants) {
  for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
    for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
      const auto& obs = campaign_->at(v, d);
      if (obs.rr_reachable()) {
        EXPECT_TRUE(obs.rr_responsive());
        EXPECT_LE(obs.dest_slot, obs.stamp_count);
        EXPECT_LE(obs.dest_slot, 9);
      }
      if (obs.flags & RrObservation::kOptionPresent) {
        EXPECT_LE(static_cast<int>(obs.stamp_count) + obs.free_slots, 9);
      }
    }
  }
}

TEST_F(MeasureTest, SomeDestinationsAreReachableWithinNineHops) {
  const auto reachable = campaign_->rr_reachable_indices();
  const auto responsive = campaign_->rr_responsive_indices();
  EXPECT_GT(reachable.size(), 0u);
  EXPECT_GT(responsive.size(), reachable.size() / 2);
  // Reachable implies responsive.
  for (std::size_t d : reachable) {
    EXPECT_TRUE(campaign_->rr_responsive(d));
  }
}

TEST_F(MeasureTest, DistanceCdfIsMonotoneAndBounded) {
  const auto responsive = campaign_->rr_responsive_indices();
  std::vector<std::size_t> all_vps;
  for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
    all_vps.push_back(v);
  }
  const auto cdf = closest_vp_distance_cdf(*campaign_, all_vps, responsive);
  double prev = 0.0;
  for (int x = 1; x <= 9; ++x) {
    const double y = cdf.fraction_at_or_below(x);
    EXPECT_GE(y, prev);
    prev = y;
  }
  EXPECT_DOUBLE_EQ(
      cdf.fraction_at_or_below(9),
      fraction_within(*campaign_, all_vps, responsive, 9));
}

TEST_F(MeasureTest, SubsetReachabilityIsMonotone) {
  const auto responsive = campaign_->rr_responsive_indices();
  const auto mlab = vp_indices_of_platform(*campaign_, topo::Platform::kMLab);
  std::vector<std::size_t> all_vps;
  for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
    all_vps.push_back(v);
  }
  EXPECT_LE(fraction_within(*campaign_, mlab, responsive, 9),
            fraction_within(*campaign_, all_vps, responsive, 9));
}

TEST_F(MeasureTest, GreedySelectionCoverageIsMonotoneAndEndsComplete) {
  const auto reachable = campaign_->rr_reachable_indices();
  ASSERT_GT(reachable.size(), 0u);
  std::vector<std::size_t> all_vps;
  for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
    all_vps.push_back(v);
  }
  const auto greedy =
      greedy_vp_selection(*campaign_, all_vps, reachable, 50);
  ASSERT_FALSE(greedy.coverage.empty());
  for (std::size_t i = 1; i < greedy.coverage.size(); ++i) {
    EXPECT_GE(greedy.coverage[i], greedy.coverage[i - 1]);
  }
  // Candidates = the very VPs defining reachability, so coverage ends at 1.
  EXPECT_NEAR(greedy.coverage.back(), 1.0, 1e-9);
  // No VP chosen twice.
  auto chosen = greedy.chosen_vps;
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(std::adjacent_find(chosen.begin(), chosen.end()), chosen.end());
}

TEST_F(MeasureTest, MidarRecoversRealAliasesWithoutInventingWrongOnes) {
  // Candidates: interfaces of a few multi-interface routers + some host
  // addresses (singletons).
  const auto& topology = testbed_->topology();
  std::vector<net::IPv4Address> candidates;
  int router_sets = 0;
  for (topo::RouterId id = 0; id < topology.routers().size() &&
                              router_sets < 12; ++id) {
    const auto& router = topology.router_at(id);
    if (router.interfaces.size() < 3) continue;
    candidates.insert(candidates.end(), router.interfaces.begin(),
                      router.interfaces.end());
    ++router_sets;
  }
  ASSERT_GT(router_sets, 3);
  for (std::size_t i = 0; i < 30; ++i) {
    candidates.push_back(
        topology.host_at(topology.destinations()[i]).address);
  }

  auto prober = testbed_->make_prober(testbed_->vps().front()->host, 200.0);
  MidarConfig config;
  config.shard_size = 64;
  const auto aliases = run_midar(prober, candidates, config);

  // Every inferred alias pair must be a true pair (no false positives
  // against ground truth); and at least some true sets are recovered.
  std::size_t true_pairs = 0, false_pairs = 0;
  for (const auto& set : aliases.sets()) {
    for (std::size_t i = 0; i + 1 < set.size(); ++i) {
      const auto truth = topology.aliases_of(set[i]);
      if (std::find(truth.begin(), truth.end(), set[i + 1]) != truth.end()) {
        ++true_pairs;
      } else {
        ++false_pairs;
      }
    }
  }
  EXPECT_GT(true_pairs, 0u);
  EXPECT_EQ(false_pairs, 0u);
}

TEST_F(MeasureTest, ReclassificationAddsOnlyCandidateDestinations) {
  const auto candidates = reclassification_candidates(*campaign_);
  const auto midar_input = midar_candidate_addresses(*campaign_);
  EXPECT_FALSE(midar_input.empty());

  auto prober = testbed_->make_prober(testbed_->vps().front()->host, 200.0);
  MidarConfig midar_config;
  midar_config.shard_size = 128;
  midar_config.max_addresses = 4000;
  const auto aliases = run_midar(prober, midar_input, midar_config);

  const auto result = reclassify(*testbed_, *campaign_, aliases);
  for (std::size_t d : result.via_alias) {
    EXPECT_TRUE(campaign_->rr_responsive(d));
    EXPECT_FALSE(campaign_->rr_reachable(d));
  }
  for (std::size_t d : result.via_quoted) {
    EXPECT_TRUE(campaign_->rr_responsive(d));
    EXPECT_FALSE(campaign_->rr_reachable(d));
    // Exclusive buckets.
    EXPECT_EQ(std::find(result.via_alias.begin(), result.via_alias.end(),
                        d), result.via_alias.end());
  }
  // The UDP path should prove at least one no-self-stamp destination.
  EXPECT_GT(result.udp_probes_sent, 0u);
}

TEST_F(MeasureTest, AsStampingAuditFindsMostAsesAlwaysStamp) {
  AsStampingConfig config;
  config.max_dests_per_vp = 60;
  const auto result = audit_as_stamping(*testbed_, *campaign_, config);
  ASSERT_GT(result.pairs_compared, 0u);
  ASSERT_GT(result.total_ases(), 0u);
  // The overwhelming majority of transit ASes stamp every time.
  EXPECT_GT(static_cast<double>(result.always()) /
                static_cast<double>(result.total_ases()),
            0.80);
  EXPECT_EQ(result.always() + result.sometimes() + result.never(),
            result.total_ases());
}

TEST_F(MeasureTest, RateLimitStudyFindsHigherLossAtHigherRate) {
  RateLimitConfig config;
  config.sample_size = 300;
  const auto result = rate_limit_study(*testbed_, *campaign_, config);
  ASSERT_FALSE(result.rows.empty());
  std::uint64_t low_total = 0, high_total = 0;
  for (const auto& row : result.rows) {
    low_total += row.responses_low;
    high_total += row.responses_high;
  }
  EXPECT_LE(high_total, low_total);  // faster probing never helps
}

TEST_F(MeasureTest, TtlStudyShowsTheTradeoff) {
  TtlStudyConfig config;
  config.per_vp_per_class = 60;
  const auto result = ttl_study(*testbed_, *campaign_, config);
  ASSERT_FALSE(result.rows.empty());

  const auto* low = result.row_for(3);
  const auto* high = result.row_for(64);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  // At TTL 3 nearly nothing in range answers; at TTL 64 nearly everything
  // previously reachable does.
  EXPECT_LT(low->near_reply_rate(), 0.35);
  EXPECT_GT(high->near_reply_rate(), 0.60);
  // Far destinations answer much less at mid TTLs than at 64.
  const auto* mid = result.row_for(10);
  if (mid != nullptr && mid->far_sent > 10) {
    EXPECT_LT(mid->far_reply_rate(), high->far_reply_rate() + 1e-9);
  }
}

TEST_F(MeasureTest, CloudStudyProducesCdfsForEveryProvider) {
  CloudStudyConfig config;
  config.max_reachable_dests = 120;
  config.max_responsive_dests = 120;
  const auto result = cloud_study(*testbed_, *campaign_, config);
  ASSERT_EQ(result.providers.size(), testbed_->topology().clouds().size());
  EXPECT_FALSE(result.mlab_to_reachable.empty());
  for (const auto& provider : result.providers) {
    EXPECT_FALSE(provider.to_reachable.empty())
        << provider.name << " produced no reachable samples";
    // Hop counts are positive and bounded by the traceroute TTL cap.
    EXPECT_GE(provider.to_reachable.min(), 1.0);
    EXPECT_LE(provider.to_reachable.max(), 40.0);
  }
}

TEST_F(MeasureTest, Epoch2011ReachesFewerDestinations) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 5;
  config.epoch = topo::Epoch::k2011;
  Testbed old_testbed{testbed_->topology_ptr(), testbed_->behaviors_ptr(),
                      config};
  const auto old_campaign = Campaign::run(old_testbed);

  std::vector<std::size_t> vps_2016(campaign_->num_vps());
  std::vector<std::size_t> vps_2011(old_campaign.num_vps());
  for (std::size_t v = 0; v < vps_2016.size(); ++v) vps_2016[v] = v;
  for (std::size_t v = 0; v < vps_2011.size(); ++v) vps_2011[v] = v;

  const auto resp_2016 = campaign_->rr_responsive_indices();
  const auto resp_2011 = old_campaign.rr_responsive_indices();
  const double frac_2016 =
      fraction_within(*campaign_, vps_2016, resp_2016, 9);
  const double frac_2011 =
      fraction_within(old_campaign, vps_2011, resp_2011, 9);
  EXPECT_LT(frac_2011, frac_2016);
}

TEST_F(MeasureTest, Figure1SeriesAreWellFormedCdfs) {
  const auto mlab = vp_indices_of_platform(*campaign_, topo::Platform::kMLab);
  const auto greedy = greedy_vp_selection(
      *campaign_, mlab, campaign_->rr_reachable_indices(), 10);
  const auto figure = figure1(*campaign_, greedy);
  ASSERT_GE(figure.series().size(), 2u);
  for (const auto& series : figure.series()) {
    ASSERT_EQ(series.points.size(), 9u) << series.label;
    double prev = 0.0;
    for (const auto& [x, y] : series.points) {
      EXPECT_GE(y, prev) << series.label;  // CDFs are monotone
      EXPECT_LE(y, 1.0);
      prev = y;
    }
  }
  // The full M-Lab set dominates any greedy subset pointwise.
  const auto& all_mlab = figure.series().front();
  for (const auto& series : figure.series()) {
    if (series.label == "1 M-Lab site") {
      for (std::size_t i = 0; i < series.points.size(); ++i) {
        EXPECT_LE(series.points[i].second, all_mlab.points[i].second + 1e-9);
      }
    }
  }
}

TEST_F(MeasureTest, Figure5SeriesCoverEveryProbedTtl) {
  TtlStudyConfig config;
  config.per_vp_per_class = 30;
  const auto result = ttl_study(*testbed_, *campaign_, config);
  const auto figure = figure5(result);
  ASSERT_EQ(figure.series().size(), 2u);
  EXPECT_EQ(figure.series()[0].points.size(), result.rows.size());
  EXPECT_EQ(figure.series()[1].points.size(), result.rows.size());
}

TEST_F(MeasureTest, VpResponseFigureEndsAtOne) {
  const auto figure = vp_response_figure(*campaign_);
  ASSERT_EQ(figure.series().size(), 1u);
  ASSERT_FALSE(figure.series()[0].points.empty());
  EXPECT_NEAR(figure.series()[0].points.back().second, 1.0, 1e-9);
}

TEST_F(MeasureTest, VpResponseCountsRevealEdgeFiltering) {
  const auto counts = responding_vp_counts(*campaign_);
  ASSERT_FALSE(counts.empty());
  // Destinations rarely respond to a strict minority of VPs: filtering is
  // edge-dominated, so most respond to most VPs.
  const double frac = fraction_answering_more_than(
      *campaign_, static_cast<int>(campaign_->num_vps() * 2 / 3));
  EXPECT_GT(frac, 0.5);
}

// ------------------------------------------------------------- faults
// These run LAST (gtest preserves declaration order): serial-mode probe
// flow keys fold the network's global send counter, so tests that push
// extra traffic through the shared testbed must not run before the
// deterministic studies above.

/// Installs a fault plan on the shared network and clears it again even
/// when an ASSERT bails out of the test body early.
class FaultPlanGuard {
 public:
  FaultPlanGuard(sim::Network& net, const sim::FaultParams& params)
      : net_(net) {
    net_.set_fault_plan(sim::FaultPlan{params});
  }
  ~FaultPlanGuard() { net_.set_fault_plan(sim::FaultPlan{}); }
  FaultPlanGuard(const FaultPlanGuard&) = delete;
  FaultPlanGuard& operator=(const FaultPlanGuard&) = delete;

 private:
  sim::Network& net_;
};

TEST_F(MeasureTest, MidarUnderFaultsLosesPairsButNeverInventsThem) {
  // Same candidate set as the clean MIDAR test: interfaces of multi-
  // interface routers plus singleton host addresses.
  const auto& topology = testbed_->topology();
  std::vector<net::IPv4Address> candidates;
  int router_sets = 0;
  for (topo::RouterId id = 0; id < topology.routers().size() &&
                              router_sets < 12; ++id) {
    const auto& router = topology.router_at(id);
    if (router.interfaces.size() < 3) continue;
    candidates.insert(candidates.end(), router.interfaces.begin(),
                      router.interfaces.end());
    ++router_sets;
  }
  ASSERT_GT(router_sets, 3);
  for (std::size_t i = 0; i < 30; ++i) {
    candidates.push_back(
        topology.host_at(topology.destinations()[i]).address);
  }

  // Kill a few probes outright and add capture-point noise: lost or
  // delayed samples may cost the estimation stage candidates (false
  // negatives), but the Monotonic Bounds Test must never pair addresses
  // that do not share a counter.
  const auto before = testbed_->network().fault_counters().total();
  sim::FaultParams faults;
  faults.checksum_corrupt = 0.004;
  faults.duplicate_reply = 0.30;
  faults.reorder_reply = 0.10;
  faults.reorder_delay_s = 0.05;  // jitter, not a different epoch
  faults.seed = 0xA11A5;
  FaultPlanGuard guard{testbed_->network(), faults};

  auto prober = testbed_->make_prober(testbed_->vps().front()->host, 200.0);
  MidarConfig config;
  config.shard_size = 64;
  const auto aliases = run_midar(prober, candidates, config);

  std::size_t true_pairs = 0, false_pairs = 0;
  for (const auto& set : aliases.sets()) {
    for (std::size_t i = 0; i + 1 < set.size(); ++i) {
      const auto truth = topology.aliases_of(set[i]);
      if (std::find(truth.begin(), truth.end(), set[i + 1]) != truth.end()) {
        ++true_pairs;
      } else {
        ++false_pairs;
      }
    }
  }
  EXPECT_GT(true_pairs, 0u);
  EXPECT_EQ(false_pairs, 0u);
  EXPECT_GT(testbed_->network().fault_counters().total(), before);
}

TEST_F(MeasureTest, AliasRecoveryUnderFaultsOnlyFindsTrueAliasStampers) {
  // The §3.3 false-negative recovery under fire: destinations that
  // stamped an alias (host_stamps_alias behaviour) are recovered via
  // MIDAR even when faults eat some of the probes — and every recovery
  // must be genuine. A destination recovered by the alias test must
  // actually own aliases in the ground-truth topology; faulted evidence
  // may shrink the recovered set but never redirects it.
  const auto& topology = testbed_->topology();
  const auto midar_input = midar_candidate_addresses(*campaign_);
  ASSERT_FALSE(midar_input.empty());

  const auto before = testbed_->network().fault_counters().total();
  sim::FaultParams faults = sim::FaultParams::uniform(0.01);
  faults.seed = 0x5E7B;
  FaultPlanGuard guard{testbed_->network(), faults};

  auto prober = testbed_->make_prober(testbed_->vps().front()->host, 200.0);
  MidarConfig midar_config;
  midar_config.shard_size = 128;
  midar_config.max_addresses = 4000;
  const auto aliases = run_midar(prober, midar_input, midar_config);
  const auto result = reclassify(*testbed_, *campaign_, aliases);

  for (std::size_t d : result.via_alias) {
    EXPECT_TRUE(campaign_->rr_responsive(d));
    EXPECT_FALSE(campaign_->rr_reachable(d));
    // Ground truth: only hosts that really own alias addresses can be
    // recovered through the alias path.
    const auto& host = topology.host_at(campaign_->destinations()[d]);
    EXPECT_FALSE(host.aliases.empty())
        << "dest " << d << " recovered via alias but owns no aliases";
  }
  for (std::size_t d : result.via_quoted) {
    EXPECT_TRUE(campaign_->rr_responsive(d));
    EXPECT_FALSE(campaign_->rr_reachable(d));
    EXPECT_EQ(std::find(result.via_alias.begin(), result.via_alias.end(),
                        d), result.via_alias.end());
  }
  EXPECT_GT(testbed_->network().fault_counters().total(), before);
}

}  // namespace
}  // namespace rr::measure
