// Property-style sweeps over the wire-format layer: every RR capacity,
// randomized headers, corruption rejection, incremental-vs-full checksum
// equivalence, and quoting depth.
#include <gtest/gtest.h>

#include "netbase/checksum.h"
#include "packet/datagram.h"
#include "packet/mutate.h"
#include "util/rng.h"

namespace rr::pkt {
namespace {

using net::IPv4Address;

// ------------------------------------------------ RR capacities 1..9

class RrCapacity : public ::testing::TestWithParam<int> {};

TEST_P(RrCapacity, RoundTripsAtEveryFill) {
  const int capacity = GetParam();
  for (int fill = 0; fill <= capacity; ++fill) {
    RecordRouteOption rr = RecordRouteOption::empty(
        static_cast<std::uint8_t>(capacity));
    for (int i = 0; i < fill; ++i) {
      ASSERT_TRUE(rr.stamp(IPv4Address(10, 1, 0, static_cast<uint8_t>(i))));
    }
    EXPECT_EQ(rr.remaining_slots(), capacity - fill);

    net::ByteWriter writer;
    ASSERT_TRUE(serialize_options({IpOption{rr}}, writer));
    const auto parsed = parse_options(writer.view());
    ASSERT_TRUE(parsed.has_value());
    const auto* back = find_record_route(*parsed);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(*back, rr);
  }
}

TEST_P(RrCapacity, WireLengthFormula) {
  const int capacity = GetParam();
  const auto rr = RecordRouteOption::empty(static_cast<std::uint8_t>(capacity));
  EXPECT_EQ(rr.wire_length(), 3 + 4 * capacity);
  EXPECT_LE(rr.wire_length(), kMaxOptionBytes);
}

TEST_P(RrCapacity, InPlaceStampMatchesStructuredStamp) {
  const int capacity = GetParam();
  const auto ping = make_ping(IPv4Address(1, 1, 1, 1), IPv4Address(2, 2, 2, 2),
                              7, 1, 64, capacity);
  auto bytes = *ping.serialize();

  RecordRouteOption expected = RecordRouteOption::empty(
      static_cast<std::uint8_t>(capacity));
  util::Rng rng{static_cast<std::uint64_t>(capacity)};
  for (int i = 0; i < capacity + 2; ++i) {
    const IPv4Address addr{static_cast<std::uint32_t>(rng())};
    EXPECT_EQ(rr_stamp(bytes, addr), expected.stamp(addr));
  }
  const auto parsed = Datagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->header.record_route(), nullptr);
  EXPECT_EQ(*parsed->header.record_route(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllCapacities, RrCapacity, ::testing::Range(1, 10));

// ------------------------------------------------ randomized datagrams

class RandomDatagram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDatagram, SerializeParseIsIdentity) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 50; ++trial) {
    Datagram datagram;
    datagram.header.source = IPv4Address{static_cast<std::uint32_t>(rng())};
    datagram.header.destination =
        IPv4Address{static_cast<std::uint32_t>(rng())};
    datagram.header.ttl = static_cast<std::uint8_t>(rng.next_in(1, 255));
    datagram.header.tos = static_cast<std::uint8_t>(rng());
    datagram.header.identification = static_cast<std::uint16_t>(rng());
    const bool udp = rng.chance(0.4);
    const int slots = static_cast<int>(rng.next_in(0, 9));
    if (slots > 0) {
      auto rr = RecordRouteOption::empty(static_cast<std::uint8_t>(slots));
      const int fill = static_cast<int>(rng.next_in(0, slots));
      for (int i = 0; i < fill; ++i) {
        ASSERT_TRUE(rr.stamp(IPv4Address{static_cast<std::uint32_t>(rng())}));
      }
      datagram.header.options.emplace_back(std::move(rr));
    }
    if (udp) {
      UdpDatagram payload;
      payload.source_port = static_cast<std::uint16_t>(rng());
      payload.destination_port = static_cast<std::uint16_t>(rng());
      payload.payload.resize(rng.next_below(32));
      for (auto& b : payload.payload) b = static_cast<std::uint8_t>(rng());
      datagram.header.protocol = IpProto::kUdp;
      datagram.payload = std::move(payload);
    } else {
      datagram.header.protocol = IpProto::kIcmp;
      datagram.payload = IcmpMessage::echo_request(
          static_cast<std::uint16_t>(rng()), static_cast<std::uint16_t>(rng()),
          rng.next_below(24) + 4);
    }

    const auto bytes = datagram.serialize();
    ASSERT_TRUE(bytes.has_value());
    const auto parsed = Datagram::parse(*bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.source, datagram.header.source);
    EXPECT_EQ(parsed->header.destination, datagram.header.destination);
    EXPECT_EQ(parsed->header.ttl, datagram.header.ttl);
    EXPECT_EQ(parsed->header.identification, datagram.header.identification);
    EXPECT_EQ(parsed->header.options, datagram.header.options);
    if (udp) {
      ASSERT_NE(parsed->udp(), nullptr);
      EXPECT_EQ(*parsed->udp(), *datagram.udp());
    } else {
      ASSERT_NE(parsed->icmp(), nullptr);
      ASSERT_NE(parsed->icmp()->echo(), nullptr);
      EXPECT_EQ(*parsed->icmp()->echo(), *datagram.icmp()->echo());
    }

    // Re-serializing the parse yields identical bytes (canonical form).
    const auto again = parsed->serialize();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *bytes);
  }
}

TEST_P(RandomDatagram, SingleBitCorruptionIsNeverSilentlyAccepted) {
  util::Rng rng{GetParam() ^ 0xabcdef};
  const auto ping = make_ping(IPv4Address(1, 2, 3, 4), IPv4Address(4, 3, 2, 1),
                              1, 1, 64, 9);
  const auto bytes = *ping.serialize();
  for (int trial = 0; trial < 80; ++trial) {
    auto corrupted = bytes;
    const std::size_t byte_index = rng.next_below(corrupted.size());
    const int bit = static_cast<int>(rng.next_below(8));
    corrupted[byte_index] ^= static_cast<std::uint8_t>(1 << bit);
    const auto parsed = Datagram::parse(corrupted);
    if (!parsed.has_value()) continue;  // rejected: good
    // A flip that still parses must NOT be in the checksummed regions
    // unless it flipped back to an equivalent encoding (impossible for a
    // single bit) — i.e. it can only be inside the ICMP payload whose
    // checksum covers it... which would also fail. So the only acceptable
    // survivors are none at all.
    ADD_FAILURE() << "corruption at byte " << byte_index << " bit " << bit
                  << " was accepted";
  }
}

TEST_P(RandomDatagram, DecrementTtlAgreesWithFullRecompute) {
  util::Rng rng{GetParam() ^ 0x77};
  for (int trial = 0; trial < 30; ++trial) {
    const auto ping = make_ping(
        IPv4Address{static_cast<std::uint32_t>(rng())},
        IPv4Address{static_cast<std::uint32_t>(rng())},
        static_cast<std::uint16_t>(rng()), 1,
        static_cast<std::uint8_t>(rng.next_in(2, 255)),
        static_cast<int>(rng.next_in(0, 9)));
    auto incremental = *ping.serialize();
    auto recomputed = incremental;
    ASSERT_TRUE(decrement_ttl(incremental).has_value());
    recomputed[8] = static_cast<std::uint8_t>(recomputed[8] - 1);
    ASSERT_TRUE(rewrite_header_checksum(recomputed));
    EXPECT_EQ(incremental, recomputed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDatagram,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------ quoting depth sweep

class QuoteDepth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuoteDepth, QuotesHeaderPlusRequestedPayload) {
  const std::size_t depth = GetParam();
  const auto probe = make_udp_probe(IPv4Address(9, 9, 9, 9),
                                    IPv4Address(8, 8, 8, 8), 1000, 33435, 64,
                                    9);
  const auto bytes = *probe.serialize();
  const auto error = IcmpMessage::error(IcmpType::kDestUnreachable,
                                        kCodePortUnreachable, bytes, depth);
  const auto* body = error.error_body();
  ASSERT_NE(body, nullptr);
  const std::size_t header_bytes = 60;  // 20 + 40 option bytes
  EXPECT_EQ(body->quoted_datagram.size(),
            std::min(bytes.size(), header_bytes + depth));
  // The quoted header always parses regardless of quoting depth.
  EXPECT_TRUE(Ipv4Header::parse(body->quoted_datagram).has_value());
}

INSTANTIATE_TEST_SUITE_P(Depths, QuoteDepth,
                         ::testing::Values(0, 4, 8, 16, 64, 1500));

// ------------------------------------------------ checksum properties

TEST(ChecksumProperty, InsertionOrderIndependence) {
  // One's-complement addition commutes: partial sums over chunks equal
  // the sum over the concatenation.
  util::Rng rng{404};
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> data(2 * (1 + rng.next_below(64)));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::size_t split = 2 * rng.next_below(data.size() / 2);
    const std::uint32_t chunked = net::checksum_partial(
        std::span<const std::uint8_t>{data}.subspan(split),
        net::checksum_partial(
            std::span<const std::uint8_t>{data}.first(split)));
    EXPECT_EQ(net::checksum_finish(chunked),
              net::internet_checksum(data));
  }
}

}  // namespace
}  // namespace rr::pkt
