// End-to-end integration: the full bench pipeline at miniature scale —
// both epochs, every study, consistency across them. This is the "does the
// whole paper reproduce on a toy world" test.
#include <gtest/gtest.h>

#include "measure/as_stamping.h"
#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/cloud.h"
#include "measure/midar.h"
#include "measure/ratelimit.h"
#include "measure/reachability.h"
#include "measure/reclassify.h"
#include "measure/testbed.h"
#include "measure/ttl_study.h"

namespace rr::measure {
namespace {

class FullPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.num_ases = 200;
    config.topo_params.colo_fraction = 0.3;
    config.topo_params.mlab_sites_2016 = 12;
    config.topo_params.planetlab_sites_2016 = 8;
    config.topo_params.seed = 808;
    testbed16_ = new Testbed{config};
    campaign16_ = new Campaign{Campaign::run(*testbed16_)};

    TestbedConfig config11 = config;
    config11.epoch = topo::Epoch::k2011;
    testbed11_ = new Testbed{testbed16_->topology_ptr(),
                             testbed16_->behaviors_ptr(), config11};
    campaign11_ = new Campaign{Campaign::run(*testbed11_)};
  }
  static void TearDownTestSuite() {
    delete campaign11_;
    delete testbed11_;
    delete campaign16_;
    delete testbed16_;
  }

  static Testbed* testbed16_;
  static Campaign* campaign16_;
  static Testbed* testbed11_;
  static Campaign* campaign11_;
};

Testbed* FullPipeline::testbed16_ = nullptr;
Campaign* FullPipeline::campaign16_ = nullptr;
Testbed* FullPipeline::testbed11_ = nullptr;
Campaign* FullPipeline::campaign11_ = nullptr;

TEST_F(FullPipeline, Table1ShapeHolds) {
  const auto table = build_response_table(*campaign16_);
  EXPECT_GT(table.by_ip[0].ping_rate(), 0.55);
  EXPECT_GT(table.by_ip[0].rr_over_ping(), 0.5);
  EXPECT_GT(table.by_as[0].rr_over_ping(), table.by_ip[0].rr_over_ping());
}

TEST_F(FullPipeline, Figure1ShapeHolds) {
  const auto responsive = campaign16_->rr_responsive_indices();
  std::vector<std::size_t> all(campaign16_->num_vps());
  for (std::size_t v = 0; v < all.size(); ++v) all[v] = v;
  const auto cdf = closest_vp_distance_cdf(*campaign16_, all, responsive);
  const double within9 = cdf.fraction_at_or_below(9);
  EXPECT_GT(within9, 0.3);
  EXPECT_LT(within9, 1.0);
  EXPECT_LE(cdf.fraction_at_or_below(5), within9);
}

TEST_F(FullPipeline, Figure2DirectionHolds) {
  // Same world, same devices: the 2016 epoch must reach more.
  std::vector<std::size_t> vps16(campaign16_->num_vps());
  std::vector<std::size_t> vps11(campaign11_->num_vps());
  for (std::size_t v = 0; v < vps16.size(); ++v) vps16[v] = v;
  for (std::size_t v = 0; v < vps11.size(); ++v) vps11[v] = v;
  const double frac16 = fraction_within(
      *campaign16_, vps16, campaign16_->rr_responsive_indices(), 9);
  const double frac11 = fraction_within(
      *campaign11_, vps11, campaign11_->rr_responsive_indices(), 9);
  EXPECT_GT(frac16, frac11 + 0.05);
}

TEST_F(FullPipeline, ResponsivenessIsEpochInvariant) {
  // RR-responsiveness is a property of devices and edge policy, not of
  // path lengths — the two campaigns must agree on it almost everywhere
  // (modulo rare on-path filters and loss).
  std::size_t both = 0, only16 = 0, only11 = 0;
  for (std::size_t d = 0; d < campaign16_->num_destinations(); ++d) {
    const bool r16 = campaign16_->rr_responsive(d);
    const bool r11 = campaign11_->rr_responsive(d);
    if (r16 && r11) ++both;
    if (r16 && !r11) ++only16;
    if (!r16 && r11) ++only11;
  }
  EXPECT_GT(both, 0u);
  EXPECT_LT(only16 + only11, both / 5 + 10);
}

TEST_F(FullPipeline, ReclassifyFindsTheInjectedFalseNegatives) {
  auto prober = testbed16_->make_prober(testbed16_->vps().front()->host,
                                        500.0);
  MidarConfig midar_config;
  midar_config.shard_size = 256;
  const auto aliases = run_midar(
      prober, midar_candidate_addresses(*campaign16_), midar_config);
  const auto result = reclassify(*testbed16_, *campaign16_, aliases);

  // Ground-truth audit of each recovery.
  const auto& behaviors = testbed16_->behaviors();
  for (std::size_t d : result.via_alias) {
    const auto host_id = campaign16_->destinations()[d];
    const auto& hb = behaviors.host(host_id);
    EXPECT_NE(hb.stamp_address,
              campaign16_->topology().host_at(host_id).address)
        << "alias recovery for a destination that stamps its own address";
  }
  for (std::size_t d : result.via_quoted) {
    const auto host_id = campaign16_->destinations()[d];
    const auto& hb = behaviors.host(host_id);
    // Quoted recovery proves in-range arrival; the destination either
    // doesn't stamp at all or stamps an alias we failed to resolve.
    EXPECT_TRUE(!hb.stamps_self ||
                hb.stamp_address !=
                    campaign16_->topology().host_at(host_id).address);
  }
}

TEST_F(FullPipeline, AsStampingAuditMatchesGroundTruthPolicies) {
  AsStampingConfig config;
  config.max_dests_per_vp = 80;
  const auto result = audit_as_stamping(*testbed16_, *campaign16_, config);
  ASSERT_GT(result.pairs_compared, 0u);

  const auto& behaviors = testbed16_->behaviors();
  for (const auto& [as, tally] : result.per_as) {
    const auto policy = behaviors.as_behavior(as).stamping;
    if (tally.seen_in_both == 0 && tally.seen_in_traceroute >= 3) {
      // An AS consistently missing from RR should really be a non-stamper.
      EXPECT_NE(policy, sim::StampPolicy::kAlways)
          << "AS " << as << " audited as never-stamping but policy says "
          << "always";
    }
    if (policy == sim::StampPolicy::kNever) {
      EXPECT_EQ(tally.seen_in_both, 0u);
    }
  }
}

TEST_F(FullPipeline, RateLimitStudyFlagsOnlyStrictVps) {
  RateLimitConfig config;
  config.sample_size = 400;
  const auto result = rate_limit_study(*testbed16_, *campaign16_, config);
  const auto& strict = testbed16_->behaviors().strict_limited_vp_indices();
  // Map strict VP topology indices to campaign indices.
  std::vector<std::size_t> strict_campaign;
  const auto all_vps = testbed16_->topology().vantage_points();
  for (std::size_t idx : strict) {
    for (std::size_t v = 0; v < campaign16_->num_vps(); ++v) {
      if (campaign16_->vps()[v] == &all_vps[idx]) {
        strict_campaign.push_back(v);
      }
    }
  }
  for (const auto& row : result.rows) {
    if (row.drop_fraction() > 0.4) {
      EXPECT_NE(std::find(strict_campaign.begin(), strict_campaign.end(),
                          row.vp_index),
                strict_campaign.end())
          << "VP " << row.vp_index
          << " collapsed at 100pps without a strict limiter";
    }
  }
}

TEST_F(FullPipeline, TtlStudyCurvesAreOrdered) {
  TtlStudyConfig config;
  config.per_vp_per_class = 60;
  const auto result = ttl_study(*testbed16_, *campaign16_, config);
  const auto* low = result.row_for(4);
  const auto* mid = result.row_for(12);
  const auto* high = result.row_for(64);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(high, nullptr);
  // Near-destination reply rate increases with TTL.
  EXPECT_LE(low->near_reply_rate(), mid->near_reply_rate() + 0.1);
  EXPECT_LE(mid->near_reply_rate(), high->near_reply_rate() + 0.1);
  // The far curve sits below the near curve at the default TTL's level of
  // the near curve... at every TTL below ~12 the near set answers more.
  if (mid->far_sent > 20) {
    EXPECT_GE(mid->near_reply_rate() + 0.15, mid->far_reply_rate());
  }
}

TEST_F(FullPipeline, CloudStudyShowsCloudsCloserThanMlab) {
  CloudStudyConfig config;
  config.max_reachable_dests = 150;
  config.max_responsive_dests = 150;
  const auto result = cloud_study(*testbed16_, *campaign16_, config);
  ASSERT_FALSE(result.providers.empty());
  ASSERT_FALSE(result.mlab_to_reachable.empty());
  // The best-connected provider (GCE in the paper) peers so broadly that
  // its distances beat or match M-Lab's; the others are in the same
  // ballpark (the paper, too, found EC2/Softlayer notably worse).
  const auto& best = result.providers.front();
  if (!best.to_reachable.empty()) {
    EXPECT_LE(best.to_reachable.median(),
              result.mlab_to_reachable.median() + 1.0);
  }
  for (const auto& provider : result.providers) {
    if (provider.to_reachable.empty()) continue;
    EXPECT_LE(provider.to_reachable.median(),
              result.mlab_to_reachable.median() + 4.0)
        << provider.name;
  }
}

}  // namespace
}  // namespace rr::measure
