// The scamper-like prober: pacing, probe construction, response parsing,
// traceroute mechanics.
#include <gtest/gtest.h>

#include <algorithm>

#include "measure/testbed.h"
#include "probe/prober.h"

namespace rr::probe {
namespace {

class ProbeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 33;
    testbed_ = new measure::Testbed{config};
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }

  static topo::HostId vp_host() {
    return testbed_->vps().front()->host;
  }
  static net::IPv4Address dest_address(std::size_t i) {
    return testbed_->topology().host_at(
        testbed_->topology().destinations()[i]).address;
  }

  static measure::Testbed* testbed_;
};

measure::Testbed* ProbeTest::testbed_ = nullptr;

TEST_F(ProbeTest, ClockAdvancesAtConfiguredRate) {
  auto prober = testbed_->make_prober(vp_host(), 20.0);
  EXPECT_DOUBLE_EQ(prober.clock(), 0.0);
  (void)prober.probe(ProbeSpec::ping(dest_address(0)));
  EXPECT_DOUBLE_EQ(prober.clock(), 0.05);
  (void)prober.probe(ProbeSpec::ping(dest_address(1)));
  EXPECT_DOUBLE_EQ(prober.clock(), 0.10);
}

TEST_F(ProbeTest, PingGetsEchoReplyFromResponsiveDest) {
  auto prober = testbed_->make_prober(vp_host(), 100.0);
  int replies = 0;
  const std::size_t n =
      std::min<std::size_t>(testbed_->topology().destinations().size(), 200);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = prober.probe(ProbeSpec::ping(dest_address(i)));
    if (r.kind == ResponseKind::kEchoReply) {
      ++replies;
      EXPECT_EQ(r.responder, dest_address(i));
      EXPECT_GT(r.rtt, 0.0);
      EXPECT_FALSE(r.rr_option_in_reply);  // plain ping carries no option
    }
  }
  // Roughly three quarters of destinations answer ping.
  EXPECT_GT(replies, static_cast<int>(n / 2));
  EXPECT_EQ(prober.mismatched(), 0u);
}

TEST_F(ProbeTest, PingRrRecordsRoute) {
  auto prober = testbed_->make_prober(vp_host(), 100.0);
  int with_option = 0, with_dest_stamp = 0;
  const std::size_t n =
      std::min<std::size_t>(testbed_->topology().destinations().size(), 300);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = prober.probe(ProbeSpec::ping_rr(dest_address(i)));
    if (r.kind != ResponseKind::kEchoReply || !r.rr_option_in_reply) continue;
    ++with_option;
    EXPECT_LE(r.rr_recorded.size(), 9u);
    EXPECT_EQ(static_cast<int>(r.rr_recorded.size()) + r.rr_free_slots, 9);
    if (std::find(r.rr_recorded.begin(), r.rr_recorded.end(),
                  dest_address(i)) != r.rr_recorded.end()) {
      ++with_dest_stamp;
    }
  }
  EXPECT_GT(with_option, 0);
  EXPECT_GT(with_dest_stamp, 0);
}

TEST_F(ProbeTest, PingTsRecordsAddressTimestampPairs) {
  auto prober = testbed_->make_prober(vp_host(), 100.0);
  int with_ts = 0, overflowed = 0;
  const std::size_t n =
      std::min<std::size_t>(testbed_->topology().destinations().size(), 300);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = prober.probe(ProbeSpec::ping_ts(dest_address(i)));
    if (r.kind != ResponseKind::kEchoReply || !r.ts_option_in_reply) continue;
    ++with_ts;
    EXPECT_LE(r.ts_entries.size(), 4u);  // the option area caps TS at four
    if (r.ts_overflow > 0) ++overflowed;
    // Timestamps are non-decreasing along the forward path.
    for (std::size_t k = 1; k < r.ts_entries.size(); ++k) {
      EXPECT_GE(r.ts_entries[k].second, r.ts_entries[k - 1].second);
    }
  }
  EXPECT_GT(with_ts, 0);
  // Most paths are longer than four hops: overflow should be common —
  // the wire-format reason the paper prefers RR's nine slots.
  EXPECT_GT(overflowed, with_ts / 2);
}

TEST_F(ProbeTest, UdpProbeElicitsPortUnreachable) {
  auto prober = testbed_->make_prober(vp_host(), 100.0);
  int unreachables = 0;
  const std::size_t n =
      std::min<std::size_t>(testbed_->topology().destinations().size(), 300);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = prober.probe(ProbeSpec::ping_rr_udp(dest_address(i)));
    if (r.kind == ResponseKind::kPortUnreachable) {
      ++unreachables;
      EXPECT_TRUE(r.quoted_rr_present);
      EXPECT_EQ(static_cast<int>(r.quoted_rr.size()) +
                    r.quoted_rr_free_slots, 9);
    }
  }
  EXPECT_GT(unreachables, 0);
}

TEST_F(ProbeTest, TtlLimitedProbeYieldsTimeExceeded) {
  auto prober = testbed_->make_prober(vp_host(), 100.0);
  int exceeded = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const auto r = prober.probe(ProbeSpec::ping_rr(dest_address(i), 2));
    if (r.kind == ResponseKind::kTtlExceeded) {
      ++exceeded;
      EXPECT_TRUE(r.quoted_rr_present);
      // Expired two hops out: at most 2 forward stamps in the quote.
      EXPECT_LE(r.quoted_rr.size(), 2u);
    }
  }
  EXPECT_GT(exceeded, 10);
}

TEST_F(ProbeTest, TracerouteReachesRespondingDestination) {
  auto prober = testbed_->make_prober(vp_host(), 200.0);
  int reached = 0;
  for (std::size_t i = 0; i < 60 && reached < 5; ++i) {
    const auto trace = prober.traceroute(dest_address(i), 30, 2);
    if (!trace.reached) continue;
    ++reached;
    EXPECT_GT(trace.hop_count(), 1);
    EXPECT_EQ(trace.hops.back().kind, ResponseKind::kEchoReply);
    EXPECT_EQ(trace.hops.back().address, dest_address(i));
    // Intermediate responding hops are routers, not the destination.
    for (std::size_t h = 0; h + 1 < trace.hops.size(); ++h) {
      if (!trace.hops[h].responded) continue;
      EXPECT_EQ(trace.hops[h].kind, ResponseKind::kTtlExceeded);
      EXPECT_NE(trace.hops[h].address, dest_address(i));
    }
  }
  EXPECT_GE(reached, 5);
}

TEST_F(ProbeTest, TracerouteHopsAreMonotoneTtl) {
  auto prober = testbed_->make_prober(vp_host(), 200.0);
  const auto trace = prober.traceroute(dest_address(2), 20, 1);
  for (std::size_t h = 0; h < trace.hops.size(); ++h) {
    EXPECT_EQ(trace.hops[h].ttl, static_cast<int>(h) + 1);
  }
}

TEST_F(ProbeTest, ResultsAreDeterministicAcrossRuns) {
  // Two fresh networks with identical seeds produce identical outcomes.
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 77;
  measure::Testbed a{config}, b{config};
  auto pa = a.make_prober(a.vps().front()->host, 50.0);
  auto pb = b.make_prober(b.vps().front()->host, 50.0);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto da = a.topology().host_at(a.topology().destinations()[i]).address;
    const auto db = b.topology().host_at(b.topology().destinations()[i]).address;
    ASSERT_EQ(da, db);
    const auto ra = pa.probe(ProbeSpec::ping_rr(da));
    const auto rb = pb.probe(ProbeSpec::ping_rr(db));
    EXPECT_EQ(ra.kind, rb.kind);
    EXPECT_EQ(ra.rr_recorded, rb.rr_recorded);
  }
}

}  // namespace
}  // namespace rr::probe
