// Batched-dataplane differential conformance harness.
//
// PR "batched probe dataplane" added two independent execution choices to
// the campaign, both claiming *bit-identity* with the paths they
// accelerate — not statistical similarity:
//
//   * probe_batch > 1 drives ping-RR exchanges through the SoA batch
//     kernel (sim::walk_batch_pipeline + Network::send_batch) instead of
//     one scalar probe_into per destination;
//   * shard_replay fans each chunk's pass-B token replay across the
//     worker pool by router, falling back to the classic serial replay
//     for any chunk where a mid-probe bucket kill would have suppressed
//     later consumes.
//
// This harness proves both claims by running whole campaigns on the same
// frozen world and comparing frozen datasets (content_hash plus full
// equality) and the aggregate network counters: batched-vs-scalar at
// fault rates {0, 1%, 10%} x worker threads {1, 2, 8}, ragged batch
// widths, and sharded-vs-serial replay including a bucket-contention
// world built so the fallback path demonstrably runs.
//
// When this file fails, tests/pipeline_differential_test.cpp (scalar
// engine conformance) and tests/element_test.cpp (per-element specs) say
// which layer diverged.
#include <gtest/gtest.h>

#include <cstdint>

#include "data/dataset.h"
#include "measure/campaign.h"
#include "measure/testbed.h"
#include "sim/fault.h"
#include "sim/network.h"

namespace rr::measure {
namespace {

class BatchDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 1701;
    testbed_ = new Testbed{config};
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }

  struct Run {
    data::CampaignDataset dataset;
    sim::NetCounters counters;
    CampaignPhaseStats phases;
  };

  static Run run_campaign(Testbed& testbed, int probe_batch, bool shard_replay,
                          double fault_rate, int threads) {
    CampaignConfig config;
    config.threads = threads;
    config.probe_batch = probe_batch;
    config.shard_replay = shard_replay;
    if (fault_rate > 0.0) {
      config.faults = sim::FaultParams::uniform(fault_rate);
    }
    Campaign campaign = Campaign::run(testbed, config);
    const CampaignPhaseStats phases = campaign.phase_stats();
    return Run{
        data::CampaignDataset::from_campaign(std::move(campaign), "batch"),
        testbed.network().counters(), phases};
  }

  /// The aggregate counters are part of the contract too: the batched
  /// engine must charge every drop to the same cause the scalar one does.
  static void expect_counters_equal(const sim::NetCounters& a,
                                    const sim::NetCounters& b) {
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.dropped_loss, b.dropped_loss);
    EXPECT_EQ(a.dropped_filter, b.dropped_filter);
    EXPECT_EQ(a.dropped_rate_limit, b.dropped_rate_limit);
    EXPECT_EQ(a.dropped_ttl, b.dropped_ttl);
    EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
    EXPECT_EQ(a.ttl_errors, b.ttl_errors);
    EXPECT_EQ(a.port_unreachables, b.port_unreachables);
  }

  static void expect_runs_equal(const Run& candidate, const Run& reference) {
    EXPECT_EQ(candidate.dataset.content_hash(),
              reference.dataset.content_hash());
    EXPECT_EQ(candidate.dataset, reference.dataset);
    expect_counters_equal(candidate.counters, reference.counters);
  }

  /// One scalar reference (probe_batch 1, single-threaded — the exact
  /// per-probe path the batch kernel replaced) against the batched engine
  /// at every thread count. Batched runs agreeing with the same reference
  /// also proves they agree with each other.
  static void expect_batched_agrees(double fault_rate) {
    const Run scalar = run_campaign(*testbed_, 1, true, fault_rate, 1);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(testing::Message()
                   << "fault_rate " << fault_rate << " threads " << threads);
      const Run batched = run_campaign(*testbed_, 16, true, fault_rate,
                                       threads);
      expect_runs_equal(batched, scalar);
    }
  }

  static Testbed* testbed_;
};

Testbed* BatchDifferentialTest::testbed_ = nullptr;

TEST_F(BatchDifferentialTest, BatchedBitIdenticalWithoutFaults) {
  expect_batched_agrees(0.0);
}

TEST_F(BatchDifferentialTest, BatchedBitIdenticalAtOnePercentFaults) {
  expect_batched_agrees(0.01);
}

TEST_F(BatchDifferentialTest, BatchedBitIdenticalAtTenPercentFaults) {
  expect_batched_agrees(0.10);
}

/// Widths that never divide the per-chunk probe count exercise the ragged
/// tail batch (live mask with fewer slots than kMaxProbes) on every chunk.
TEST_F(BatchDifferentialTest, RaggedBatchWidthsBitIdentical) {
  const Run scalar = run_campaign(*testbed_, 1, true, 0.0, 1);
  for (const int width : {3, 7}) {
    SCOPED_TRACE(testing::Message() << "probe_batch " << width);
    const Run batched = run_campaign(*testbed_, width, true, 0.0, 2);
    expect_runs_equal(batched, scalar);
  }
}

/// Sharded pass-B replay vs the classic serial replay, same batched pass
/// A — on a world where the shards actually *commit*. The default world's
/// strict source-proximate limiter VPs (12-45 pps buckets probed at
/// 20 pps) kill mid-probe in nearly every chunk, so its sharded runs live
/// on the fallback path (proven equal by expect_batched_agrees and the
/// contention test below); with strict limiters off, the generous
/// 250-4000 pps buckets never deplete and every chunk must resolve
/// sharded.
TEST_F(BatchDifferentialTest, ShardedReplayMatchesSerialReplay) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 1701;
  config.behavior_params.strict_limited_vps = 0;
  Testbed calm{config};
  for (const double fault_rate : {0.0, 0.01}) {
    const Run serial = run_campaign(calm, 16, false, fault_rate, 2);
    EXPECT_EQ(serial.phases.sharded_chunks, 0u);  // knob actually off
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(testing::Message()
                   << "fault_rate " << fault_rate << " threads " << threads);
      const Run sharded = run_campaign(calm, 16, true, fault_rate, threads);
      expect_runs_equal(sharded, serial);
      EXPECT_GT(sharded.phases.sharded_chunks, 0u);
    }
  }
}

/// The fallback property: a world where every router polices its options
/// slow path with a near-empty bucket makes mid-probe kills routine, so
/// the phantom-consume validation must reject chunks — and the chunks it
/// rejects must replay serially to the exact serial-bytes result. This is
/// the half of the sharding proof the calm default world never reaches.
TEST_F(BatchDifferentialTest, ShardedReplayFallsBackUnderContention) {
  TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 1701;
  config.behavior_params.router_rate_limited = 1.0;
  config.behavior_params.generous_limit_pps_min = 1;
  config.behavior_params.generous_limit_pps_max = 2;
  Testbed contended{config};

  const Run serial = run_campaign(contended, 16, false, 0.0, 2);
  const Run sharded = run_campaign(contended, 16, true, 0.0, 2);
  expect_runs_equal(sharded, serial);
  // The contended world must actually exercise the fallback — if buckets
  // never killed mid-probe here, the test world went stale, not the code.
  EXPECT_GT(sharded.phases.serial_fallback_chunks, 0u);
  EXPECT_GT(serial.counters.dropped_rate_limit, 0u);
}

}  // namespace
}  // namespace rr::measure
