file(REMOVE_RECURSE
  "CMakeFiles/alloc_steady_state.dir/alloc_steady_state_main.cpp.o"
  "CMakeFiles/alloc_steady_state.dir/alloc_steady_state_main.cpp.o.d"
  "alloc_steady_state"
  "alloc_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
