# Empty dependencies file for alloc_steady_state.
# This may be replaced when dependencies are built.
