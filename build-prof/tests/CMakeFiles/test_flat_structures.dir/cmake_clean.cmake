file(REMOVE_RECURSE
  "CMakeFiles/test_flat_structures.dir/flat_structures_test.cpp.o"
  "CMakeFiles/test_flat_structures.dir/flat_structures_test.cpp.o.d"
  "test_flat_structures"
  "test_flat_structures.pdb"
  "test_flat_structures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
