# Empty compiler generated dependencies file for test_flat_structures.
# This may be replaced when dependencies are built.
