# Empty dependencies file for fuzz_packet.
# This may be replaced when dependencies are built.
