file(REMOVE_RECURSE
  "CMakeFiles/fuzz_packet.dir/fuzz_packet_main.cpp.o"
  "CMakeFiles/fuzz_packet.dir/fuzz_packet_main.cpp.o.d"
  "fuzz_packet"
  "fuzz_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
