file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_cache.dir/oracle_cache_test.cpp.o"
  "CMakeFiles/test_oracle_cache.dir/oracle_cache_test.cpp.o.d"
  "test_oracle_cache"
  "test_oracle_cache.pdb"
  "test_oracle_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
