# Empty compiler generated dependencies file for test_oracle_cache.
# This may be replaced when dependencies are built.
