file(REMOVE_RECURSE
  "CMakeFiles/test_view_wire.dir/view_wire_test.cpp.o"
  "CMakeFiles/test_view_wire.dir/view_wire_test.cpp.o.d"
  "test_view_wire"
  "test_view_wire.pdb"
  "test_view_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_view_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
