file(REMOVE_RECURSE
  "CMakeFiles/test_sim_property.dir/sim_property_test.cpp.o"
  "CMakeFiles/test_sim_property.dir/sim_property_test.cpp.o.d"
  "test_sim_property"
  "test_sim_property.pdb"
  "test_sim_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
