# Empty dependencies file for test_sim_property.
# This may be replaced when dependencies are built.
