# Empty dependencies file for test_campaign_determinism.
# This may be replaced when dependencies are built.
