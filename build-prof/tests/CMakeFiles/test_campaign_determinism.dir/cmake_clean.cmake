file(REMOVE_RECURSE
  "CMakeFiles/test_campaign_determinism.dir/campaign_determinism_test.cpp.o"
  "CMakeFiles/test_campaign_determinism.dir/campaign_determinism_test.cpp.o.d"
  "test_campaign_determinism"
  "test_campaign_determinism.pdb"
  "test_campaign_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
