# Empty compiler generated dependencies file for test_golden_output.
# This may be replaced when dependencies are built.
