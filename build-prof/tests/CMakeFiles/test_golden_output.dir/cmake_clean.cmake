file(REMOVE_RECURSE
  "CMakeFiles/test_golden_output.dir/golden_output_test.cpp.o"
  "CMakeFiles/test_golden_output.dir/golden_output_test.cpp.o.d"
  "test_golden_output"
  "test_golden_output.pdb"
  "test_golden_output[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
