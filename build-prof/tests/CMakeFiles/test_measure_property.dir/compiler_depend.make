# Empty compiler generated dependencies file for test_measure_property.
# This may be replaced when dependencies are built.
