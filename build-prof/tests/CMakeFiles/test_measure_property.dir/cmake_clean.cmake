file(REMOVE_RECURSE
  "CMakeFiles/test_measure_property.dir/measure_property_test.cpp.o"
  "CMakeFiles/test_measure_property.dir/measure_property_test.cpp.o.d"
  "test_measure_property"
  "test_measure_property.pdb"
  "test_measure_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
