file(REMOVE_RECURSE
  "CMakeFiles/test_fib_equivalence.dir/fib_equivalence_test.cpp.o"
  "CMakeFiles/test_fib_equivalence.dir/fib_equivalence_test.cpp.o.d"
  "test_fib_equivalence"
  "test_fib_equivalence.pdb"
  "test_fib_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fib_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
