# Empty compiler generated dependencies file for test_packet_property.
# This may be replaced when dependencies are built.
