file(REMOVE_RECURSE
  "CMakeFiles/test_packet_property.dir/packet_property_test.cpp.o"
  "CMakeFiles/test_packet_property.dir/packet_property_test.cpp.o.d"
  "test_packet_property"
  "test_packet_property.pdb"
  "test_packet_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
