file(REMOVE_RECURSE
  "CMakeFiles/test_topology_property.dir/topology_property_test.cpp.o"
  "CMakeFiles/test_topology_property.dir/topology_property_test.cpp.o.d"
  "test_topology_property"
  "test_topology_property.pdb"
  "test_topology_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
