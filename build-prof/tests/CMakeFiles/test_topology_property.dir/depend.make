# Empty dependencies file for test_topology_property.
# This may be replaced when dependencies are built.
