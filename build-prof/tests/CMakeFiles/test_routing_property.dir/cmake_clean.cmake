file(REMOVE_RECURSE
  "CMakeFiles/test_routing_property.dir/routing_property_test.cpp.o"
  "CMakeFiles/test_routing_property.dir/routing_property_test.cpp.o.d"
  "test_routing_property"
  "test_routing_property.pdb"
  "test_routing_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
