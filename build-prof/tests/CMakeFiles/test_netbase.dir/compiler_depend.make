# Empty compiler generated dependencies file for test_netbase.
# This may be replaced when dependencies are built.
