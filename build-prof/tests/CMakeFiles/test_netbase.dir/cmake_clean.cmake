file(REMOVE_RECURSE
  "CMakeFiles/test_netbase.dir/netbase_test.cpp.o"
  "CMakeFiles/test_netbase.dir/netbase_test.cpp.o.d"
  "test_netbase"
  "test_netbase.pdb"
  "test_netbase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
