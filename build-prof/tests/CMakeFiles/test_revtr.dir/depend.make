# Empty dependencies file for test_revtr.
# This may be replaced when dependencies are built.
