file(REMOVE_RECURSE
  "CMakeFiles/test_revtr.dir/revtr_test.cpp.o"
  "CMakeFiles/test_revtr.dir/revtr_test.cpp.o.d"
  "test_revtr"
  "test_revtr.pdb"
  "test_revtr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
