
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/test_topology.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/data/CMakeFiles/rr_data.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/revtr/CMakeFiles/rr_revtr.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/measure/CMakeFiles/rr_measure.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/probe/CMakeFiles/rr_probe.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/sim/CMakeFiles/rr_sim.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/routing/CMakeFiles/rr_routing.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/topology/CMakeFiles/rr_topology.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/packet/CMakeFiles/rr_packet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/netbase/CMakeFiles/rr_netbase.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/analysis/CMakeFiles/rr_analysis.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
