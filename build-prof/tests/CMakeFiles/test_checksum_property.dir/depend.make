# Empty dependencies file for test_checksum_property.
# This may be replaced when dependencies are built.
