file(REMOVE_RECURSE
  "CMakeFiles/test_checksum_property.dir/checksum_property_test.cpp.o"
  "CMakeFiles/test_checksum_property.dir/checksum_property_test.cpp.o.d"
  "test_checksum_property"
  "test_checksum_property.pdb"
  "test_checksum_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checksum_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
