file(REMOVE_RECURSE
  "librr_probe.a"
)
