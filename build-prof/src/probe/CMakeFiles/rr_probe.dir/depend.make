# Empty dependencies file for rr_probe.
# This may be replaced when dependencies are built.
