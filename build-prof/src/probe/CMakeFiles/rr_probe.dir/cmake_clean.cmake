file(REMOVE_RECURSE
  "CMakeFiles/rr_probe.dir/prober.cpp.o"
  "CMakeFiles/rr_probe.dir/prober.cpp.o.d"
  "librr_probe.a"
  "librr_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
