file(REMOVE_RECURSE
  "CMakeFiles/rr_data.dir/dataset.cpp.o"
  "CMakeFiles/rr_data.dir/dataset.cpp.o.d"
  "CMakeFiles/rr_data.dir/jsonl.cpp.o"
  "CMakeFiles/rr_data.dir/jsonl.cpp.o.d"
  "librr_data.a"
  "librr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
