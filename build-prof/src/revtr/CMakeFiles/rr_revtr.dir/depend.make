# Empty dependencies file for rr_revtr.
# This may be replaced when dependencies are built.
