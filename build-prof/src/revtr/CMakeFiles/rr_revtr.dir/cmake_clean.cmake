file(REMOVE_RECURSE
  "CMakeFiles/rr_revtr.dir/reverse_traceroute.cpp.o"
  "CMakeFiles/rr_revtr.dir/reverse_traceroute.cpp.o.d"
  "librr_revtr.a"
  "librr_revtr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_revtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
