file(REMOVE_RECURSE
  "librr_revtr.a"
)
