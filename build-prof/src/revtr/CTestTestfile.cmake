# CMake generated Testfile for 
# Source directory: /root/repo/src/revtr
# Build directory: /root/repo/build-prof/src/revtr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
