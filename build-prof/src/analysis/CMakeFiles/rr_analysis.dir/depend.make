# Empty dependencies file for rr_analysis.
# This may be replaced when dependencies are built.
