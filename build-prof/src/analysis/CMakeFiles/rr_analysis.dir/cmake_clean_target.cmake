file(REMOVE_RECURSE
  "librr_analysis.a"
)
