file(REMOVE_RECURSE
  "CMakeFiles/rr_analysis.dir/series.cpp.o"
  "CMakeFiles/rr_analysis.dir/series.cpp.o.d"
  "CMakeFiles/rr_analysis.dir/table.cpp.o"
  "CMakeFiles/rr_analysis.dir/table.cpp.o.d"
  "librr_analysis.a"
  "librr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
