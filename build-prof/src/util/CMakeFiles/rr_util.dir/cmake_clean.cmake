file(REMOVE_RECURSE
  "CMakeFiles/rr_util.dir/flags.cpp.o"
  "CMakeFiles/rr_util.dir/flags.cpp.o.d"
  "CMakeFiles/rr_util.dir/log.cpp.o"
  "CMakeFiles/rr_util.dir/log.cpp.o.d"
  "CMakeFiles/rr_util.dir/rng.cpp.o"
  "CMakeFiles/rr_util.dir/rng.cpp.o.d"
  "CMakeFiles/rr_util.dir/strings.cpp.o"
  "CMakeFiles/rr_util.dir/strings.cpp.o.d"
  "CMakeFiles/rr_util.dir/thread_pool.cpp.o"
  "CMakeFiles/rr_util.dir/thread_pool.cpp.o.d"
  "librr_util.a"
  "librr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
