file(REMOVE_RECURSE
  "CMakeFiles/rr_sim.dir/behavior.cpp.o"
  "CMakeFiles/rr_sim.dir/behavior.cpp.o.d"
  "CMakeFiles/rr_sim.dir/fault.cpp.o"
  "CMakeFiles/rr_sim.dir/fault.cpp.o.d"
  "CMakeFiles/rr_sim.dir/network.cpp.o"
  "CMakeFiles/rr_sim.dir/network.cpp.o.d"
  "librr_sim.a"
  "librr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
