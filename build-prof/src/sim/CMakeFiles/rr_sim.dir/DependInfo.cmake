
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/behavior.cpp" "src/sim/CMakeFiles/rr_sim.dir/behavior.cpp.o" "gcc" "src/sim/CMakeFiles/rr_sim.dir/behavior.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/rr_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/rr_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/rr_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/rr_sim.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/routing/CMakeFiles/rr_routing.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/packet/CMakeFiles/rr_packet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/topology/CMakeFiles/rr_topology.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/rr_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/netbase/CMakeFiles/rr_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
