file(REMOVE_RECURSE
  "librr_sim.a"
)
