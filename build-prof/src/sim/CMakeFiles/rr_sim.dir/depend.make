# Empty dependencies file for rr_sim.
# This may be replaced when dependencies are built.
