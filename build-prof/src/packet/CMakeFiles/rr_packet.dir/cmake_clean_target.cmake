file(REMOVE_RECURSE
  "librr_packet.a"
)
