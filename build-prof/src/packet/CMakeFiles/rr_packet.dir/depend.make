# Empty dependencies file for rr_packet.
# This may be replaced when dependencies are built.
