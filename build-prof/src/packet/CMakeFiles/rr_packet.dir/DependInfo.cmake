
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/datagram.cpp" "src/packet/CMakeFiles/rr_packet.dir/datagram.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/datagram.cpp.o.d"
  "/root/repo/src/packet/icmp.cpp" "src/packet/CMakeFiles/rr_packet.dir/icmp.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/icmp.cpp.o.d"
  "/root/repo/src/packet/ipv4.cpp" "src/packet/CMakeFiles/rr_packet.dir/ipv4.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/ipv4.cpp.o.d"
  "/root/repo/src/packet/mutate.cpp" "src/packet/CMakeFiles/rr_packet.dir/mutate.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/mutate.cpp.o.d"
  "/root/repo/src/packet/options.cpp" "src/packet/CMakeFiles/rr_packet.dir/options.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/options.cpp.o.d"
  "/root/repo/src/packet/udp.cpp" "src/packet/CMakeFiles/rr_packet.dir/udp.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/udp.cpp.o.d"
  "/root/repo/src/packet/wire.cpp" "src/packet/CMakeFiles/rr_packet.dir/wire.cpp.o" "gcc" "src/packet/CMakeFiles/rr_packet.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/netbase/CMakeFiles/rr_netbase.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
