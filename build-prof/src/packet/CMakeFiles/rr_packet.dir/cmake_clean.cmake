file(REMOVE_RECURSE
  "CMakeFiles/rr_packet.dir/datagram.cpp.o"
  "CMakeFiles/rr_packet.dir/datagram.cpp.o.d"
  "CMakeFiles/rr_packet.dir/icmp.cpp.o"
  "CMakeFiles/rr_packet.dir/icmp.cpp.o.d"
  "CMakeFiles/rr_packet.dir/ipv4.cpp.o"
  "CMakeFiles/rr_packet.dir/ipv4.cpp.o.d"
  "CMakeFiles/rr_packet.dir/mutate.cpp.o"
  "CMakeFiles/rr_packet.dir/mutate.cpp.o.d"
  "CMakeFiles/rr_packet.dir/options.cpp.o"
  "CMakeFiles/rr_packet.dir/options.cpp.o.d"
  "CMakeFiles/rr_packet.dir/udp.cpp.o"
  "CMakeFiles/rr_packet.dir/udp.cpp.o.d"
  "CMakeFiles/rr_packet.dir/wire.cpp.o"
  "CMakeFiles/rr_packet.dir/wire.cpp.o.d"
  "librr_packet.a"
  "librr_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
