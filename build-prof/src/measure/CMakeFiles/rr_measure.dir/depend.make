# Empty dependencies file for rr_measure.
# This may be replaced when dependencies are built.
