
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/as_stamping.cpp" "src/measure/CMakeFiles/rr_measure.dir/as_stamping.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/as_stamping.cpp.o.d"
  "/root/repo/src/measure/campaign.cpp" "src/measure/CMakeFiles/rr_measure.dir/campaign.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/campaign.cpp.o.d"
  "/root/repo/src/measure/classify.cpp" "src/measure/CMakeFiles/rr_measure.dir/classify.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/classify.cpp.o.d"
  "/root/repo/src/measure/cloud.cpp" "src/measure/CMakeFiles/rr_measure.dir/cloud.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/cloud.cpp.o.d"
  "/root/repo/src/measure/figures.cpp" "src/measure/CMakeFiles/rr_measure.dir/figures.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/figures.cpp.o.d"
  "/root/repo/src/measure/midar.cpp" "src/measure/CMakeFiles/rr_measure.dir/midar.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/midar.cpp.o.d"
  "/root/repo/src/measure/ratelimit.cpp" "src/measure/CMakeFiles/rr_measure.dir/ratelimit.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/ratelimit.cpp.o.d"
  "/root/repo/src/measure/reachability.cpp" "src/measure/CMakeFiles/rr_measure.dir/reachability.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/reachability.cpp.o.d"
  "/root/repo/src/measure/reclassify.cpp" "src/measure/CMakeFiles/rr_measure.dir/reclassify.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/reclassify.cpp.o.d"
  "/root/repo/src/measure/testbed.cpp" "src/measure/CMakeFiles/rr_measure.dir/testbed.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/testbed.cpp.o.d"
  "/root/repo/src/measure/ttl_study.cpp" "src/measure/CMakeFiles/rr_measure.dir/ttl_study.cpp.o" "gcc" "src/measure/CMakeFiles/rr_measure.dir/ttl_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/probe/CMakeFiles/rr_probe.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/sim/CMakeFiles/rr_sim.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/routing/CMakeFiles/rr_routing.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/topology/CMakeFiles/rr_topology.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/analysis/CMakeFiles/rr_analysis.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/rr_util.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/packet/CMakeFiles/rr_packet.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/netbase/CMakeFiles/rr_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
