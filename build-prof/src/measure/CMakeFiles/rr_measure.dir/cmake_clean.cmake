file(REMOVE_RECURSE
  "CMakeFiles/rr_measure.dir/as_stamping.cpp.o"
  "CMakeFiles/rr_measure.dir/as_stamping.cpp.o.d"
  "CMakeFiles/rr_measure.dir/campaign.cpp.o"
  "CMakeFiles/rr_measure.dir/campaign.cpp.o.d"
  "CMakeFiles/rr_measure.dir/classify.cpp.o"
  "CMakeFiles/rr_measure.dir/classify.cpp.o.d"
  "CMakeFiles/rr_measure.dir/cloud.cpp.o"
  "CMakeFiles/rr_measure.dir/cloud.cpp.o.d"
  "CMakeFiles/rr_measure.dir/figures.cpp.o"
  "CMakeFiles/rr_measure.dir/figures.cpp.o.d"
  "CMakeFiles/rr_measure.dir/midar.cpp.o"
  "CMakeFiles/rr_measure.dir/midar.cpp.o.d"
  "CMakeFiles/rr_measure.dir/ratelimit.cpp.o"
  "CMakeFiles/rr_measure.dir/ratelimit.cpp.o.d"
  "CMakeFiles/rr_measure.dir/reachability.cpp.o"
  "CMakeFiles/rr_measure.dir/reachability.cpp.o.d"
  "CMakeFiles/rr_measure.dir/reclassify.cpp.o"
  "CMakeFiles/rr_measure.dir/reclassify.cpp.o.d"
  "CMakeFiles/rr_measure.dir/testbed.cpp.o"
  "CMakeFiles/rr_measure.dir/testbed.cpp.o.d"
  "CMakeFiles/rr_measure.dir/ttl_study.cpp.o"
  "CMakeFiles/rr_measure.dir/ttl_study.cpp.o.d"
  "librr_measure.a"
  "librr_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
