file(REMOVE_RECURSE
  "librr_measure.a"
)
