# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-prof/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netbase")
subdirs("packet")
subdirs("topology")
subdirs("routing")
subdirs("sim")
subdirs("probe")
subdirs("measure")
subdirs("revtr")
subdirs("data")
subdirs("analysis")
