file(REMOVE_RECURSE
  "librr_topology.a"
)
