# Empty dependencies file for rr_topology.
# This may be replaced when dependencies are built.
