file(REMOVE_RECURSE
  "CMakeFiles/rr_topology.dir/address_index.cpp.o"
  "CMakeFiles/rr_topology.dir/address_index.cpp.o.d"
  "CMakeFiles/rr_topology.dir/generator.cpp.o"
  "CMakeFiles/rr_topology.dir/generator.cpp.o.d"
  "CMakeFiles/rr_topology.dir/topology.cpp.o"
  "CMakeFiles/rr_topology.dir/topology.cpp.o.d"
  "librr_topology.a"
  "librr_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
