file(REMOVE_RECURSE
  "librr_netbase.a"
)
