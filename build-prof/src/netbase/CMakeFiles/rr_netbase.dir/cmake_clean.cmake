file(REMOVE_RECURSE
  "CMakeFiles/rr_netbase.dir/address.cpp.o"
  "CMakeFiles/rr_netbase.dir/address.cpp.o.d"
  "CMakeFiles/rr_netbase.dir/byte_io.cpp.o"
  "CMakeFiles/rr_netbase.dir/byte_io.cpp.o.d"
  "CMakeFiles/rr_netbase.dir/checksum.cpp.o"
  "CMakeFiles/rr_netbase.dir/checksum.cpp.o.d"
  "CMakeFiles/rr_netbase.dir/flat_lpm.cpp.o"
  "CMakeFiles/rr_netbase.dir/flat_lpm.cpp.o.d"
  "CMakeFiles/rr_netbase.dir/lpm_trie.cpp.o"
  "CMakeFiles/rr_netbase.dir/lpm_trie.cpp.o.d"
  "CMakeFiles/rr_netbase.dir/prefix.cpp.o"
  "CMakeFiles/rr_netbase.dir/prefix.cpp.o.d"
  "librr_netbase.a"
  "librr_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
