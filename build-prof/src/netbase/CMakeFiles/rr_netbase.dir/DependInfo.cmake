
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netbase/address.cpp" "src/netbase/CMakeFiles/rr_netbase.dir/address.cpp.o" "gcc" "src/netbase/CMakeFiles/rr_netbase.dir/address.cpp.o.d"
  "/root/repo/src/netbase/byte_io.cpp" "src/netbase/CMakeFiles/rr_netbase.dir/byte_io.cpp.o" "gcc" "src/netbase/CMakeFiles/rr_netbase.dir/byte_io.cpp.o.d"
  "/root/repo/src/netbase/checksum.cpp" "src/netbase/CMakeFiles/rr_netbase.dir/checksum.cpp.o" "gcc" "src/netbase/CMakeFiles/rr_netbase.dir/checksum.cpp.o.d"
  "/root/repo/src/netbase/flat_lpm.cpp" "src/netbase/CMakeFiles/rr_netbase.dir/flat_lpm.cpp.o" "gcc" "src/netbase/CMakeFiles/rr_netbase.dir/flat_lpm.cpp.o.d"
  "/root/repo/src/netbase/lpm_trie.cpp" "src/netbase/CMakeFiles/rr_netbase.dir/lpm_trie.cpp.o" "gcc" "src/netbase/CMakeFiles/rr_netbase.dir/lpm_trie.cpp.o.d"
  "/root/repo/src/netbase/prefix.cpp" "src/netbase/CMakeFiles/rr_netbase.dir/prefix.cpp.o" "gcc" "src/netbase/CMakeFiles/rr_netbase.dir/prefix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/util/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
