# Empty dependencies file for rr_netbase.
# This may be replaced when dependencies are built.
