# Empty dependencies file for rr_routing.
# This may be replaced when dependencies are built.
