file(REMOVE_RECURSE
  "CMakeFiles/rr_routing.dir/bgp.cpp.o"
  "CMakeFiles/rr_routing.dir/bgp.cpp.o.d"
  "CMakeFiles/rr_routing.dir/fib.cpp.o"
  "CMakeFiles/rr_routing.dir/fib.cpp.o.d"
  "CMakeFiles/rr_routing.dir/oracle.cpp.o"
  "CMakeFiles/rr_routing.dir/oracle.cpp.o.d"
  "CMakeFiles/rr_routing.dir/path_cache.cpp.o"
  "CMakeFiles/rr_routing.dir/path_cache.cpp.o.d"
  "CMakeFiles/rr_routing.dir/stitcher.cpp.o"
  "CMakeFiles/rr_routing.dir/stitcher.cpp.o.d"
  "librr_routing.a"
  "librr_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
