
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp.cpp" "src/routing/CMakeFiles/rr_routing.dir/bgp.cpp.o" "gcc" "src/routing/CMakeFiles/rr_routing.dir/bgp.cpp.o.d"
  "/root/repo/src/routing/fib.cpp" "src/routing/CMakeFiles/rr_routing.dir/fib.cpp.o" "gcc" "src/routing/CMakeFiles/rr_routing.dir/fib.cpp.o.d"
  "/root/repo/src/routing/oracle.cpp" "src/routing/CMakeFiles/rr_routing.dir/oracle.cpp.o" "gcc" "src/routing/CMakeFiles/rr_routing.dir/oracle.cpp.o.d"
  "/root/repo/src/routing/path_cache.cpp" "src/routing/CMakeFiles/rr_routing.dir/path_cache.cpp.o" "gcc" "src/routing/CMakeFiles/rr_routing.dir/path_cache.cpp.o.d"
  "/root/repo/src/routing/stitcher.cpp" "src/routing/CMakeFiles/rr_routing.dir/stitcher.cpp.o" "gcc" "src/routing/CMakeFiles/rr_routing.dir/stitcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/topology/CMakeFiles/rr_topology.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/netbase/CMakeFiles/rr_netbase.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/util/CMakeFiles/rr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
