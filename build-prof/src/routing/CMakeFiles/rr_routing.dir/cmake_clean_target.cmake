file(REMOVE_RECURSE
  "librr_routing.a"
)
