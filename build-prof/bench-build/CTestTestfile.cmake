# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-prof/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(BenchSmoke.MicroOnePass "/root/repo/build-prof/bench/bench_micro" "--benchmark_min_time=0.001")
set_tests_properties(BenchSmoke.MicroOnePass PROPERTIES  LABELS "tier2" WORKING_DIRECTORY "/root/repo/build-prof/bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
