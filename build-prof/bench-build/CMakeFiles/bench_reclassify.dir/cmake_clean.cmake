file(REMOVE_RECURSE
  "../bench/bench_reclassify"
  "../bench/bench_reclassify.pdb"
  "CMakeFiles/bench_reclassify.dir/bench_reclassify.cpp.o"
  "CMakeFiles/bench_reclassify.dir/bench_reclassify.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reclassify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
