# Empty compiler generated dependencies file for bench_reclassify.
# This may be replaced when dependencies are built.
