# Empty dependencies file for bench_full.
# This may be replaced when dependencies are built.
