file(REMOVE_RECURSE
  "../bench/bench_full"
  "../bench/bench_full.pdb"
  "CMakeFiles/bench_full.dir/bench_full.cpp.o"
  "CMakeFiles/bench_full.dir/bench_full.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
