file(REMOVE_RECURSE
  "../bench/bench_fig1"
  "../bench/bench_fig1.pdb"
  "CMakeFiles/bench_fig1.dir/bench_fig1.cpp.o"
  "CMakeFiles/bench_fig1.dir/bench_fig1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
