file(REMOVE_RECURSE
  "../bench/bench_faults"
  "../bench/bench_faults.pdb"
  "CMakeFiles/bench_faults.dir/bench_faults.cpp.o"
  "CMakeFiles/bench_faults.dir/bench_faults.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
