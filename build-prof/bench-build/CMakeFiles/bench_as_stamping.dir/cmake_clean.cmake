file(REMOVE_RECURSE
  "../bench/bench_as_stamping"
  "../bench/bench_as_stamping.pdb"
  "CMakeFiles/bench_as_stamping.dir/bench_as_stamping.cpp.o"
  "CMakeFiles/bench_as_stamping.dir/bench_as_stamping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_as_stamping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
