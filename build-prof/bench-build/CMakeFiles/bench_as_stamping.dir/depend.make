# Empty dependencies file for bench_as_stamping.
# This may be replaced when dependencies are built.
