# Empty compiler generated dependencies file for ttl_tuning.
# This may be replaced when dependencies are built.
