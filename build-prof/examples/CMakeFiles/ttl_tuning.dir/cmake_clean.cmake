file(REMOVE_RECURSE
  "CMakeFiles/ttl_tuning.dir/ttl_tuning.cpp.o"
  "CMakeFiles/ttl_tuning.dir/ttl_tuning.cpp.o.d"
  "ttl_tuning"
  "ttl_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttl_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
