# Empty compiler generated dependencies file for vp_selection.
# This may be replaced when dependencies are built.
