file(REMOVE_RECURSE
  "CMakeFiles/vp_selection.dir/vp_selection.cpp.o"
  "CMakeFiles/vp_selection.dir/vp_selection.cpp.o.d"
  "vp_selection"
  "vp_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
