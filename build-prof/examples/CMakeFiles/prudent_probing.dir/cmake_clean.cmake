file(REMOVE_RECURSE
  "CMakeFiles/prudent_probing.dir/prudent_probing.cpp.o"
  "CMakeFiles/prudent_probing.dir/prudent_probing.cpp.o.d"
  "prudent_probing"
  "prudent_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudent_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
