# Empty dependencies file for prudent_probing.
# This may be replaced when dependencies are built.
