file(REMOVE_RECURSE
  "CMakeFiles/reverse_traceroute_demo.dir/reverse_traceroute_demo.cpp.o"
  "CMakeFiles/reverse_traceroute_demo.dir/reverse_traceroute_demo.cpp.o.d"
  "reverse_traceroute_demo"
  "reverse_traceroute_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_traceroute_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
