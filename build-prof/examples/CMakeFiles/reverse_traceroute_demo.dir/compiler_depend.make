# Empty compiler generated dependencies file for reverse_traceroute_demo.
# This may be replaced when dependencies are built.
