# Empty dependencies file for reverse_path.
# This may be replaced when dependencies are built.
