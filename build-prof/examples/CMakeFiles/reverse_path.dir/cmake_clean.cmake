file(REMOVE_RECURSE
  "CMakeFiles/reverse_path.dir/reverse_path.cpp.o"
  "CMakeFiles/reverse_path.dir/reverse_path.cpp.o.d"
  "reverse_path"
  "reverse_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
