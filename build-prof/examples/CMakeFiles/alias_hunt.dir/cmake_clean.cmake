file(REMOVE_RECURSE
  "CMakeFiles/alias_hunt.dir/alias_hunt.cpp.o"
  "CMakeFiles/alias_hunt.dir/alias_hunt.cpp.o.d"
  "alias_hunt"
  "alias_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
