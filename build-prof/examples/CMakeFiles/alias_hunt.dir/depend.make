# Empty dependencies file for alias_hunt.
# This may be replaced when dependencies are built.
