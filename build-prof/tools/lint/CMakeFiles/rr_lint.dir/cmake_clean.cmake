file(REMOVE_RECURSE
  "CMakeFiles/rr_lint.dir/lint.cpp.o"
  "CMakeFiles/rr_lint.dir/lint.cpp.o.d"
  "librr_lint.a"
  "librr_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
