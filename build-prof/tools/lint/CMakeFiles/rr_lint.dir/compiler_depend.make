# Empty compiler generated dependencies file for rr_lint.
# This may be replaced when dependencies are built.
