file(REMOVE_RECURSE
  "librr_lint.a"
)
