file(REMOVE_RECURSE
  "CMakeFiles/rropt_lint.dir/rropt_lint_main.cpp.o"
  "CMakeFiles/rropt_lint.dir/rropt_lint_main.cpp.o.d"
  "rropt_lint"
  "rropt_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rropt_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
