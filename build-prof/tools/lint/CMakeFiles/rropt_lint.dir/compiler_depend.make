# Empty compiler generated dependencies file for rropt_lint.
# This may be replaced when dependencies are built.
