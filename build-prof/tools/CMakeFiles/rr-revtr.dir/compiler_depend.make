# Empty compiler generated dependencies file for rr-revtr.
# This may be replaced when dependencies are built.
