file(REMOVE_RECURSE
  "CMakeFiles/rr-revtr.dir/rr_revtr.cpp.o"
  "CMakeFiles/rr-revtr.dir/rr_revtr.cpp.o.d"
  "rr-revtr"
  "rr-revtr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr-revtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
