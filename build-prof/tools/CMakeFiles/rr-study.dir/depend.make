# Empty dependencies file for rr-study.
# This may be replaced when dependencies are built.
