file(REMOVE_RECURSE
  "CMakeFiles/rr-study.dir/rr_study.cpp.o"
  "CMakeFiles/rr-study.dir/rr_study.cpp.o.d"
  "rr-study"
  "rr-study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr-study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
