file(REMOVE_RECURSE
  "CMakeFiles/rr-probe.dir/rr_probe.cpp.o"
  "CMakeFiles/rr-probe.dir/rr_probe.cpp.o.d"
  "rr-probe"
  "rr-probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr-probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
