# Empty compiler generated dependencies file for rr-probe.
# This may be replaced when dependencies are built.
