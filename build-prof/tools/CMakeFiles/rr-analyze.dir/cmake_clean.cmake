file(REMOVE_RECURSE
  "CMakeFiles/rr-analyze.dir/rr_analyze.cpp.o"
  "CMakeFiles/rr-analyze.dir/rr_analyze.cpp.o.d"
  "rr-analyze"
  "rr-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
