# Empty dependencies file for rr-analyze.
# This may be replaced when dependencies are built.
