// Reverse Traceroute demo: measure the path FROM a destination we do not
// control BACK to our host, using spoofed Record Route pings — the
// NSDI'10 system whose needs motivate the paper.
#include <cstdio>

#include "measure/campaign.h"
#include "revtr/reverse_traceroute.h"

using namespace rr;

int main() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 60613;
  measure::Testbed testbed{config};

  std::printf("building the vantage-point atlas (base campaign)...\n");
  const auto campaign = measure::Campaign::run(testbed);

  revtr::ReverseTraceroute revtr{testbed, &campaign};
  const auto& topology = testbed.topology();

  // Pick a source that demonstrably sends and receives RR packets (a VP
  // behind an option-filtering edge cannot serve as a reverse-traceroute
  // source) — measurable from the campaign itself.
  std::size_t best_vp = 0;
  std::size_t best_score = 0;
  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    std::size_t score = 0;
    for (std::size_t d = 0; d < campaign.num_destinations(); d += 7) {
      if (campaign.at(v, d).rr_responsive()) ++score;
    }
    if (score > best_score) {
      best_score = score;
      best_vp = v;
    }
  }
  const topo::HostId source = campaign.vps()[best_vp]->host;
  std::printf("measuring reverse paths back to %s (%s)\n\n",
              topology.host_at(source).address.to_string().c_str(),
              campaign.vps()[best_vp]->site.c_str());

  int shown = 0;
  for (std::size_t d = 0; d < campaign.num_destinations() && shown < 6;
       d += 5) {
    if (!campaign.rr_responsive(d)) continue;
    const auto target =
        topology.host_at(campaign.destinations()[d]).address;
    const auto path = revtr.measure(target, source);
    if (!path.complete) continue;
    ++shown;

    std::printf("%s -> us  (%d spoofed segment%s, %zu RR hop%s)\n",
                target.to_string().c_str(), path.segments_used,
                path.segments_used == 1 ? "" : "s", path.measured_hops(),
                path.measured_hops() == 1 ? "" : "s");
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      const auto& hop = path.hops[i];
      std::printf("  %2zu. %-15s [%s]\n", i + 1,
                  hop.address.to_string().c_str(), to_string(hop.source));
    }
    std::printf("\n");
  }
  if (shown == 0) {
    std::printf("no complete reverse path measured; try another seed\n");
  } else {
    std::printf("hops tagged [rr] were recorded by reverse-path routers in\n"
                "the Record Route option of spoofed replies — traceroute\n"
                "from our side can never observe them.\n");
  }
  return 0;
}
