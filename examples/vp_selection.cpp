// Vantage-point selection: run a miniature version of the paper's §3.3
// analysis on a fresh world — measure every (VP, destination) pair, then
// greedily pick the fewest sites that preserve RR coverage.
//
// This is the workflow a measurement platform operator would use to decide
// which sites actually matter for Record Route studies.
#include <cstdio>

#include "measure/campaign.h"
#include "measure/reachability.h"
#include "measure/testbed.h"

using namespace rr;

int main() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.num_ases = 300;
  config.topo_params.mlab_sites_2016 = 20;
  config.topo_params.planetlab_sites_2016 = 12;
  config.topo_params.colo_fraction = 0.3;
  config.topo_params.seed = 99;
  measure::Testbed testbed{config};

  std::printf("running the base campaign (%zu VPs x %zu destinations)...\n",
              testbed.vps().size(),
              testbed.topology().destinations().size());
  const auto campaign = measure::Campaign::run(testbed);

  const auto responsive = campaign.rr_responsive_indices();
  const auto reachable = campaign.rr_reachable_indices();
  std::printf("RR-responsive: %zu, RR-reachable: %zu (%.0f%%)\n\n",
              responsive.size(), reachable.size(),
              100.0 * static_cast<double>(reachable.size()) /
                  static_cast<double>(responsive.size()));

  std::vector<std::size_t> all_vps(campaign.num_vps());
  for (std::size_t v = 0; v < all_vps.size(); ++v) all_vps[v] = v;

  const auto greedy =
      measure::greedy_vp_selection(campaign, all_vps, reachable, 8);
  std::printf("greedy site selection (coverage of the RR-reachable set):\n");
  for (std::size_t i = 0; i < greedy.chosen_vps.size(); ++i) {
    const auto& vp = *campaign.vps()[greedy.chosen_vps[i]];
    std::printf("  %zu. %-12s (%-9s)  cumulative coverage %5.1f%%\n", i + 1,
                vp.site.c_str(), to_string(vp.platform),
                100.0 * greedy.coverage[i]);
  }

  // How much does each platform contribute on its own?
  for (const auto platform :
       {topo::Platform::kMLab, topo::Platform::kPlanetLab}) {
    const auto subset = measure::vp_indices_of_platform(campaign, platform);
    std::printf("\n%s alone: %zu sites cover %.1f%% of RR-responsive "
                "within 9 hops",
                to_string(platform), subset.size(),
                100.0 * measure::fraction_within(campaign, subset,
                                                 responsive, 9));
  }
  std::printf("\n");
  return 0;
}
