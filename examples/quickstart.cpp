// Quickstart: build a small simulated Internet, send a ping with the
// Record Route option from a vantage point, and inspect what came back.
//
//   $ ./examples/quickstart
//
// This walks through the whole public API surface in ~60 lines: topology
// generation, the testbed (routing + behaviours + network), the prober,
// and the RR option contents of a reply.
#include <cstdio>

#include "measure/testbed.h"
#include "probe/prober.h"

using namespace rr;

int main() {
  // 1. A small world: ~120 ASes, a few hundred destination prefixes.
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 2017;
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();
  std::printf("world: %s\n\n", topology.summary().c_str());

  // 2. A prober bound to the first M-Lab vantage point, paced at 20
  //    packets per second like the paper's campaigns.
  const topo::VantagePoint* vp = testbed.vps().front();
  for (const auto* candidate : testbed.vps()) {
    if (candidate->platform == topo::Platform::kMLab) {
      vp = candidate;
      break;
    }
  }
  auto prober = testbed.make_prober(vp->host, /*pps=*/20.0);
  std::printf("probing from %s (%s), source address %s\n\n",
              vp->site.c_str(), to_string(vp->platform),
              prober.source_address().to_string().c_str());

  // 3. ping-RR a handful of destinations and print the recorded routes.
  int shown = 0;
  for (const topo::HostId dest : topology.destinations()) {
    const auto target = topology.host_at(dest).address;
    const auto result = prober.probe(probe::ProbeSpec::ping_rr(target));
    if (result.kind != probe::ResponseKind::kEchoReply ||
        !result.rr_option_in_reply) {
      continue;
    }

    std::printf("ping-RR %-15s rtt=%.1fms  %zu recorded, %d free\n",
                target.to_string().c_str(), result.rtt * 1e3,
                result.rr_recorded.size(), result.rr_free_slots);
    bool reached = false;
    for (std::size_t slot = 0; slot < result.rr_recorded.size(); ++slot) {
      const auto& addr = result.rr_recorded[slot];
      const bool is_target = addr == target;
      reached = reached || is_target;
      std::printf("    slot %zu: %-15s%s%s\n", slot + 1,
                  addr.to_string().c_str(), is_target ? "  <- destination" : "",
                  !is_target && reached ? "  (reverse path)" : "");
    }
    std::printf("    => %s\n\n",
                reached ? "RR-reachable: the destination stamped itself "
                          "within the nine-slot limit"
                        : "RR-responsive but not provably within nine hops");
    if (++shown == 5) break;
  }
  if (shown == 0) {
    std::printf("no RR replies (unlucky seed) — try another seed\n");
  }
  return 0;
}
