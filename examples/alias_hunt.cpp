// Alias resolution from measurements alone: harvest router addresses from
// Record Route responses, then run the MIDAR-style IP-ID test to group
// them into routers — and verify the inference against the simulator's
// ground truth (which the measurement pipeline itself never sees).
#include <cstdio>

#include "measure/campaign.h"
#include "measure/midar.h"
#include "measure/reclassify.h"
#include "measure/testbed.h"

using namespace rr;

int main() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 31337;
  measure::Testbed testbed{config};

  std::printf("running the base campaign...\n");
  const auto campaign = measure::Campaign::run(testbed);

  // Addresses worth testing: RR-responsive destinations plus everything
  // that ever appeared in an RR response header (mostly router egresses).
  const auto candidates = measure::midar_candidate_addresses(campaign);
  std::printf("harvested %zu candidate addresses from RR headers\n\n",
              candidates.size());

  auto prober = testbed.make_prober(testbed.vps().front()->host, 200.0);
  measure::MidarConfig midar;
  midar.shard_size = 256;
  const auto aliases = measure::run_midar(prober, candidates, midar);

  const auto sets = aliases.sets();
  std::printf("inferred %zu alias sets; checking against ground truth:\n\n",
              sets.size());
  std::size_t correct_pairs = 0, wrong_pairs = 0, shown = 0;
  const auto& topology = testbed.topology();
  for (const auto& set : sets) {
    if (shown < 5) {
      std::printf("  router #%zu:", shown + 1);
      for (const auto& addr : set) {
        std::printf(" %s", addr.to_string().c_str());
      }
      std::printf("\n");
      ++shown;
    }
    for (std::size_t i = 0; i + 1 < set.size(); ++i) {
      const auto truth = topology.aliases_of(set[i]);
      const bool ok = std::find(truth.begin(), truth.end(), set[i + 1]) !=
                      truth.end();
      (ok ? correct_pairs : wrong_pairs) += 1;
    }
  }
  std::printf("\nverified alias links: %zu correct, %zu wrong\n",
              correct_pairs, wrong_pairs);

  // The payoff (§3.3): destinations that looked out of RR range but in
  // fact stamped one of their other addresses.
  const auto result = measure::reclassify(testbed, campaign, aliases);
  std::printf("reclassified as RR-reachable: %zu via aliases, %zu via "
              "quoted RR headers\n",
              result.via_alias.size(), result.via_quoted.size());
  return 0;
}
