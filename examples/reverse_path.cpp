// Reverse-path measurement with Record Route — the mechanism behind
// Reverse Traceroute (Katz-Bassett et al., NSDI'10) that motivates the
// paper's "within 8 hops" metric.
//
// A ping-RR that reaches its destination with free slots keeps recording
// on the way *back*: the reply's RR option contains forward routers, the
// destination itself, and then reverse-path routers — hops that are
// invisible to any traceroute. This example finds destinations within 8
// RR hops of a vantage point and prints the reverse hops recovered from
// the reply, cross-checked against a forward traceroute.
#include <algorithm>
#include <cstdio>

#include "measure/testbed.h"
#include "probe/prober.h"

using namespace rr;

int main() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 424242;
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();

  const topo::VantagePoint* vp = testbed.vps().front();
  for (const auto* candidate : testbed.vps()) {
    if (candidate->platform == topo::Platform::kMLab) {
      vp = candidate;
      break;
    }
  }
  auto prober = testbed.make_prober(vp->host, 50.0);
  std::printf("vantage point: %s\n\n", vp->site.c_str());

  int measured = 0;
  for (const topo::HostId dest : topology.destinations()) {
    const auto target = topology.host_at(dest).address;
    const auto rr = prober.probe(probe::ProbeSpec::ping_rr(target));
    if (rr.kind != probe::ResponseKind::kEchoReply ||
        !rr.rr_option_in_reply) {
      continue;
    }
    const auto dest_slot =
        std::find(rr.rr_recorded.begin(), rr.rr_recorded.end(), target);
    if (dest_slot == rr.rr_recorded.end()) continue;  // not RR-reachable
    const auto forward_hops = dest_slot - rr.rr_recorded.begin();
    if (forward_hops + 1 >= 9) continue;  // no slots were left for reverse

    // Everything after the destination's own stamp was recorded by
    // reverse-path routers.
    std::printf("destination %s: %td forward router(s), destination stamp, "
                "%td reverse hop(s)\n",
                target.to_string().c_str(), forward_hops,
                rr.rr_recorded.end() - dest_slot - 1);
    std::printf("  forward (RR egress):");
    for (auto it = rr.rr_recorded.begin(); it != dest_slot; ++it) {
      std::printf(" %s", it->to_string().c_str());
    }
    std::printf("\n  reverse (invisible to traceroute):");
    for (auto it = dest_slot + 1; it != rr.rr_recorded.end(); ++it) {
      std::printf(" %s", it->to_string().c_str());
    }

    // Contrast with the forward traceroute: it sees ingress interfaces of
    // forward routers only.
    const auto trace = prober.traceroute(target, 20);
    std::printf("\n  traceroute (ingress):");
    for (const auto& hop : trace.hops) {
      std::printf(" %s", hop.responded ? hop.address.to_string().c_str()
                                       : "*");
    }
    std::printf("\n\n");
    if (++measured == 4) break;
  }
  if (measured == 0) {
    std::printf("no destination within 8 RR hops answered; try another "
                "seed\n");
  }
  return 0;
}
