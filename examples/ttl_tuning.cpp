// Low-impact probing: pick an initial TTL that lets ping-RR probes reach
// in-range destinations but expire before burdening distant routers
// (§4.2 of the paper).
//
// The trick: a TTL-expired probe still delivers its Record Route data,
// because the router quotes the offending header — RR stamps included —
// inside the ICMP Time Exceeded message. This example demonstrates the
// quoted read-back and then sweeps TTLs to find the sweet spot.
#include <cstdio>

#include "measure/campaign.h"
#include "measure/testbed.h"
#include "measure/ttl_study.h"

using namespace rr;

int main() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 7777;
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();

  // --- Part 1: read RR data out of a Time Exceeded quotation. ---
  auto prober = testbed.make_prober(testbed.vps().front()->host, 50.0);
  for (const topo::HostId dest : topology.destinations()) {
    const auto target = topology.host_at(dest).address;
    const auto r =
        prober.probe(probe::ProbeSpec::ping_rr(target, /*ttl=*/4));
    if (r.kind != probe::ResponseKind::kTtlExceeded || !r.quoted_rr_present) {
      continue;
    }
    std::printf("TTL-limited ping-RR to %s expired at %s after %zu stamps;\n"
                "the quoted header still carries every recorded address:\n",
                target.to_string().c_str(),
                r.responder.to_string().c_str(), r.quoted_rr.size());
    for (const auto& addr : r.quoted_rr) {
      std::printf("    %s\n", addr.to_string().c_str());
    }
    break;
  }

  // --- Part 2: the §4.2 sweep on a full campaign. ---
  std::printf("\nrunning campaign + TTL sweep...\n");
  const auto campaign = measure::Campaign::run(testbed);
  measure::TtlStudyConfig study;
  study.per_vp_per_class = 80;
  const auto result = measure::ttl_study(testbed, campaign, study);

  std::printf("\n%6s  %22s  %22s\n", "TTL", "in-range reply rate",
              "out-of-range reply rate");
  for (const auto& row : result.rows) {
    std::printf("%6d  %21.0f%%  %21.0f%%%s\n", row.ttl,
                100.0 * row.near_reply_rate(), 100.0 * row.far_reply_rate(),
                (row.ttl >= 10 && row.ttl <= 12) ? "   <- sweet spot" : "");
  }
  std::printf("\nTTLs of 10-12 reach most in-range destinations while "
              "expiring most probes\nthat would otherwise burn slow-path "
              "cycles on nine more routers.\n");
  return 0;
}
