// Prudent probing playbook: the paper's §4 recommendations as a recipe.
//
// A measurement operator who wants RR data without tripping rate limiters
// or wasting router slow-path cycles should:
//   1. detect vantage points behind strict source-proximate limiters by
//      comparing response counts at two probing rates, and slow them down;
//   2. TTL-limit ping-RR probes to ~10-12 so out-of-range probes expire
//      (their RR data still comes back inside the Time Exceeded quote);
//   3. probe destination sets in random order so destination-proximate
//      limiters never see bursts.
// This example executes the playbook end to end and reports the savings.
#include <algorithm>
#include <cstdio>

#include "measure/campaign.h"
#include "measure/ratelimit.h"
#include "measure/testbed.h"
#include "util/rng.h"

using namespace rr;

int main() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.num_ases = 240;
  config.topo_params.colo_fraction = 0.3;
  config.topo_params.seed = 4242;
  measure::Testbed testbed{config};
  std::printf("running the baseline campaign...\n");
  const auto campaign = measure::Campaign::run(testbed);

  // --- Step 1: find the rate-limited VPs. ---
  measure::RateLimitConfig rate_config;
  rate_config.sample_size = 400;
  const auto rates = measure::rate_limit_study(testbed, campaign, rate_config);
  std::printf("\nstep 1: probing-rate check (10 vs 100 pps)\n");
  std::vector<std::size_t> throttled;
  for (const auto& row : rates.rows) {
    if (row.drop_fraction() > 0.25) {
      throttled.push_back(row.vp_index);
      std::printf("  %s loses %.0f%% of responses at 100pps -> keep it at "
                  "10pps\n",
                  campaign.vps()[row.vp_index]->site.c_str(),
                  100.0 * row.drop_fraction());
    }
  }
  if (throttled.empty()) {
    std::printf("  no strictly limited VP in this world\n");
  }

  // --- Step 2: choose a TTL so far probes expire. ---
  // Estimate from campaign data: the largest observed dest_slot plus a
  // couple of TTL-only hops (routers that decrement but do not stamp).
  int max_slot = 0;
  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
      max_slot = std::max(max_slot, int(campaign.at(v, d).dest_slot));
    }
  }
  const std::uint8_t chosen_ttl = static_cast<std::uint8_t>(max_slot + 2);
  std::printf("\nstep 2: deepest in-range stamp at slot %d -> initial TTL "
              "%d\n",
              max_slot, chosen_ttl);

  // --- Step 3: re-probe with the playbook and measure the difference. ---
  util::Rng rng{99};
  std::vector<std::size_t> order;
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    order.push_back(d);
  }
  rng.shuffle(order);  // random order, per §4.1
  if (order.size() > 600) order.resize(600);

  // Probe from the most RR-capable VP (one behind an options filter would
  // see nothing) — measurable from the campaign itself.
  std::size_t best_vp = 0, best_score = 0;
  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    std::size_t score = 0;
    for (std::size_t d = 0; d < campaign.num_destinations(); d += 5) {
      if (campaign.at(v, d).rr_responsive()) ++score;
    }
    if (score > best_score) {
      best_score = score;
      best_vp = v;
    }
  }
  const auto vp = campaign.vps()[best_vp];
  std::uint64_t replies = 0, expired = 0, silent = 0;
  std::uint64_t naive_slowpath_hops = 0, playbook_slowpath_hops = 0;
  auto prober = testbed.make_prober(vp->host, 20.0);
  for (const std::size_t d : order) {
    const auto target =
        campaign.topology().host_at(campaign.destinations()[d]).address;
    const auto r =
        prober.probe(probe::ProbeSpec::ping_rr(target, chosen_ttl));
    switch (r.kind) {
      case probe::ResponseKind::kEchoReply:
        ++replies;
        playbook_slowpath_hops += r.rr_recorded.size();
        break;
      case probe::ResponseKind::kTtlExceeded:
        ++expired;
        playbook_slowpath_hops += chosen_ttl;
        break;
      default:
        ++silent;
        break;
    }
    // A naive TTL-64 probe to an out-of-range destination would have
    // burned the slow path of every router on the full round trip;
    // approximate with twice a long one-way path.
    naive_slowpath_hops +=
        r.kind == probe::ResponseKind::kEchoReply ? r.rr_recorded.size() : 28;
  }
  std::printf("\nstep 3: TTL-limited, randomized sweep from %s\n",
              vp->site.c_str());
  std::printf("  echo replies: %llu, expired in transit (RR data still "
              "recovered from quotes): %llu, silent: %llu\n",
              static_cast<unsigned long long>(replies),
              static_cast<unsigned long long>(expired),
              static_cast<unsigned long long>(silent));
  std::printf("  approx slow-path router visits: %llu with the playbook vs "
              "%llu naive (%.0f%% saved)\n",
              static_cast<unsigned long long>(playbook_slowpath_hops),
              static_cast<unsigned long long>(naive_slowpath_hops),
              100.0 * (1.0 - double(playbook_slowpath_hops) /
                                 double(std::max<std::uint64_t>(
                                     naive_slowpath_hops, 1))));
  return 0;
}
